package client

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

func shardedTestWorkload(t testing.TB, keys, requests int) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name:      "sharded-test",
		Keys:      keys,
		Requests:  requests,
		Dist:      ycsb.DistSpec{Kind: ycsb.Zipfian},
		ReadRatio: 0.9,
		Sizes:     ycsb.SizeThumbnail,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func halfFastPlacement(w *ycsb.Workload) server.Placement {
	half := len(w.Dataset.Records) / 2
	fastIdx := make([]int, half)
	for i := range fastIdx {
		fastIdx[i] = i
	}
	return server.FastIndices(fastIdx, len(w.Dataset.Records))
}

// TestShardedOneShardGolden is the golden equivalence anchor: a 1-shard
// cluster must reproduce the unsharded path byte-for-byte — every
// RunStats field including the full latency histograms.
func TestShardedOneShardGolden(t *testing.T) {
	w := shardedTestWorkload(t, 2000, 20_000)
	p := halfFastPlacement(w)
	for _, tc := range []struct {
		name string
		mod  func(*server.Config)
	}{
		{"default", func(*server.Config) {}},
		{"no-batch", func(c *server.Config) { c.DisableBatchReplay = true }},
		{"outlier-fault", func(c *server.Config) {
			c.Fault = server.FaultSpec{OutlierProb: 1, Seed: 3}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := server.DefaultConfig(server.RedisLike, 42)
			tc.mod(&cfg)
			base, err := Execute(cfg, w, p)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Shards = 1
			sharded, err := Execute(cfg, w, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, sharded) {
				t.Fatalf("Shards=1 diverged from unsharded:\nunsharded: %+v\nsharded:   %+v", base, sharded)
			}
		})
	}
}

// TestShardedOneShardMeanGolden extends the anchor through the
// repeated-measurement driver, covering the cluster snapshot/reset
// (executeShardedReused) against the single deployment's.
func TestShardedOneShardMeanGolden(t *testing.T) {
	w := shardedTestWorkload(t, 1000, 10_000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	base, err := ExecuteMeanCtx(context.Background(), cfg, w, p, 4, 0, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 1
	sharded, err := ExecuteMeanCtx(context.Background(), cfg, w, p, 4, 0, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, sharded) {
		t.Fatalf("Shards=1 mean diverged from unsharded:\nunsharded: %+v\nsharded:   %+v", base, sharded)
	}
}

// TestShardedDeterminism runs a seeded 8-shard execution 50 times
// (under -race in CI) and requires every merged RunStats — including
// histogram contents — to be identical: the merge must not depend on
// goroutine scheduling.
func TestShardedDeterminism(t *testing.T) {
	w := shardedTestWorkload(t, 1500, 12_000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 8
	first, err := Execute(cfg, w, p)
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run < 50; run++ {
		again, err := Execute(cfg, w, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d produced different merged stats:\nfirst: %+v\nagain: %+v", run, first, again)
		}
	}
}

// TestShardedMergeInvariants pins the documented merge semantics
// against a by-hand serial replay of the same cluster: counts sum,
// runtime is max-over-shards, throughput is total requests over the
// makespan.
func TestShardedMergeInvariants(t *testing.T) {
	w := shardedTestWorkload(t, 1200, 10_000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 4

	sd, err := server.NewShardedDeployment(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Load(p); err != nil {
		t.Fatal(err)
	}
	var maxRuntime simclock.Duration
	totalReq := 0
	for s := 0; s < sd.Shards(); s++ {
		st, err := RunCtx(context.Background(), sd.Dep(s), sd.Sub(s), 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Runtime > maxRuntime {
			maxRuntime = st.Runtime
		}
		totalReq += st.Requests
	}
	if totalReq != len(w.Ops) {
		t.Fatalf("shards served %d requests, trace has %d", totalReq, len(w.Ops))
	}

	agg, err := Execute(cfg, w, p)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Requests != len(w.Ops) {
		t.Fatalf("merged Requests = %d, want %d", agg.Requests, len(w.Ops))
	}
	if agg.Reads+agg.Writes != agg.Requests {
		t.Fatalf("reads %d + writes %d != requests %d", agg.Reads, agg.Writes, agg.Requests)
	}
	if agg.Runtime != maxRuntime {
		t.Fatalf("merged Runtime = %v, want max-over-shards %v", agg.Runtime, maxRuntime)
	}
	wantTput := float64(agg.Requests) / maxRuntime.Seconds()
	if agg.ThroughputOpsSec != wantTput {
		t.Fatalf("merged throughput %v, want %v", agg.ThroughputOpsSec, wantTput)
	}
}

// TestShardedTimeoutPerShard pins the clock semantics of
// Config.RunTimeout under sharding: the budget bounds each shard's own
// simulated clock (a per-process watchdog). A budget at the slowest
// shard's runtime passes; far below it, the run is cut off and the
// error names the shard.
func TestShardedTimeoutPerShard(t *testing.T) {
	w := shardedTestWorkload(t, 1200, 10_000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 4
	full, err := Execute(cfg, w, p)
	if err != nil {
		t.Fatal(err)
	}

	cfg.RunTimeout = full.Runtime // max-over-shards: every shard fits
	if _, err := Execute(cfg, w, p); err != nil {
		t.Fatalf("budget at the makespan should pass: %v", err)
	}

	cfg.RunTimeout = full.Runtime / 100
	_, err = Execute(cfg, w, p)
	if !errors.Is(err, ErrRunTimeout) {
		t.Fatalf("tight budget: got %v, want ErrRunTimeout", err)
	}
	if !strings.Contains(err.Error(), "shard ") {
		t.Fatalf("timeout error does not name the shard: %v", err)
	}
}

// TestShardedInjectedFailure checks per-shard fault injection surfaces
// as a connect-time *server.FaultError naming the dead shard.
func TestShardedInjectedFailure(t *testing.T) {
	w := shardedTestWorkload(t, 500, 2000)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 4
	cfg.Fault = server.FaultSpec{FailProb: 1, Seed: 9}
	_, err := Execute(cfg, w, server.AllFast())
	var fe *server.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want a *server.FaultError", err)
	}
	if !strings.Contains(err.Error(), "shard 0") {
		t.Fatalf("failure does not name the shard: %v", err)
	}
}

// TestShardedEveryShardServes guards against a degenerate partition:
// at the default scale every shard of an 8-way cluster must hold
// records and serve requests.
func TestShardedEveryShardServes(t *testing.T) {
	w := shardedTestWorkload(t, 2000, 20_000)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 8
	sd, err := server.NewShardedDeployment(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < sd.Shards(); s++ {
		sub := sd.Sub(s)
		if len(sub.Dataset.Records) == 0 {
			t.Errorf("shard %d holds no records", s)
		}
		if sub.RequestCount() == 0 {
			t.Errorf("shard %d serves no requests", s)
		}
	}
}
