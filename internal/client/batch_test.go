package client

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// engines under golden-equivalence test: every engine must price
// identically through the batched kernel and the per-op path.
var goldenEngines = []server.Engine{server.RedisLike, server.MemcachedLike, server.DynamoLike}

// executeBoth runs one config through the batched path (as given) and
// the per-op reference path (DisableBatchReplay) and returns both
// outcomes for comparison.
func executeBoth(t *testing.T, cfg server.Config, w *ycsb.Workload, p server.Placement) (batched, perOp RunStats, errB, errP error) {
	t.Helper()
	batched, errB = Execute(cfg, w, p)
	ref := cfg
	ref.DisableBatchReplay = true
	perOp, errP = Execute(ref, w, p)
	return
}

// requireSameOutcome asserts bit-identical stats and identical error
// text between the two replay paths.
func requireSameOutcome(t *testing.T, label string, batched, perOp RunStats, errB, errP error) {
	t.Helper()
	if (errB == nil) != (errP == nil) {
		t.Fatalf("%s: batched err %v, per-op err %v", label, errB, errP)
	}
	if errB != nil && errB.Error() != errP.Error() {
		t.Fatalf("%s: error text diverged:\n  batched: %v\n  per-op:  %v", label, errB, errP)
	}
	if !reflect.DeepEqual(batched, perOp) {
		t.Fatalf("%s: stats diverged:\n  batched: %+v\n  per-op:  %+v", label, batched, perOp)
	}
}

// TestBatchedReplayEngages pins that the default config actually takes
// the kernel path on every engine — the golden tests below would pass
// vacuously if BatchTable quietly returned nil everywhere.
func TestBatchedReplayEngages(t *testing.T) {
	w := testWorkload(0.9)
	for _, e := range goldenEngines {
		d := server.NewDeployment(server.DefaultConfig(e, 1))
		if err := d.Load(w.Dataset, server.AllFast()); err != nil {
			t.Fatal(err)
		}
		if d.BatchTable() == nil {
			t.Errorf("%v: BatchTable nil on a loaded default deployment", e)
		}
	}
	if !w.Packed().Batchable() {
		t.Error("read/write trace not batchable")
	}
	d := server.NewDeployment(server.Config{Engine: server.RedisLike, DisableBatchReplay: true})
	if err := d.Load(w.Dataset, server.AllFast()); err != nil {
		t.Fatal(err)
	}
	if d.BatchTable() != nil {
		t.Error("DisableBatchReplay did not force the per-op path")
	}
}

// TestBatchedReplayBitIdentical is the golden equivalence test of the
// kernel: for every engine, placement split and noise setting, the
// batched path must reproduce the per-op path's RunStats bit for bit.
func TestBatchedReplayBitIdentical(t *testing.T) {
	for _, ratio := range []float64{1.0, 0.7} {
		w := testWorkload(ratio)
		for _, e := range goldenEngines {
			half := make([]int, 500)
			for i := range half {
				half[i] = i
			}
			for _, p := range []server.Placement{server.AllFast(), server.AllSlow(), server.FastIndices(half, len(w.Dataset.Records))} {
				cfg := server.DefaultConfig(e, 42)
				b, r, eb, ep := executeBoth(t, cfg, w, p)
				requireSameOutcome(t, e.String(), b, r, eb, ep)
			}
			// Noise disabled: the zero-sigma fast path must agree too.
			cfg := server.DefaultConfig(e, 42)
			cfg.NoiseSigma = 0
			b, r, eb, ep := executeBoth(t, cfg, w, server.AllSlow())
			requireSameOutcome(t, e.String()+"/nonoise", b, r, eb, ep)
		}
	}
}

// TestBatchedReplayBitIdenticalWithFaults drives both paths through
// every fault fate — fail, stall (cut off by the run timeout), and
// outlier inflation — across enough seeds to roll each at least once.
func TestBatchedReplayBitIdenticalWithFaults(t *testing.T) {
	w := testWorkload(0.9)
	for _, e := range goldenEngines {
		sawErr := false
		for seed := int64(0); seed < 12; seed++ {
			cfg := server.DefaultConfig(e, seed)
			cfg.Fault = server.FaultSpec{Seed: 99, FailProb: 0.2, StallProb: 0.3, OutlierProb: 0.3}
			cfg.RunTimeout = 2 * simclock.Second
			b, r, eb, ep := executeBoth(t, cfg, w, server.AllFast())
			requireSameOutcome(t, e.String(), b, r, eb, ep)
			if eb != nil {
				sawErr = true
			}
		}
		if !sawErr {
			t.Errorf("%v: no fault fired across seeds; coverage vacuous", e)
		}
	}
}

// TestBatchedReplayTimeoutParity pins the timeout error's request index
// and clock reading: a budget-tripping batched run must cut off at the
// same request, with the same message, as the per-op path.
func TestBatchedReplayTimeoutParity(t *testing.T) {
	w := testWorkload(0.9)
	cfg := server.DefaultConfig(server.RedisLike, 7)
	cfg.RunTimeout = 20 * simclock.Millisecond // trips mid-trace
	b, r, eb, ep := executeBoth(t, cfg, w, server.AllSlow())
	if eb == nil || ep == nil {
		t.Fatalf("budget did not trip (batched %v, per-op %v)", eb, ep)
	}
	if !errors.Is(eb, ErrRunTimeout) || !errors.Is(ep, ErrRunTimeout) {
		t.Fatalf("wrong error types: %v / %v", eb, ep)
	}
	requireSameOutcome(t, "timeout", b, r, eb, ep)
}

// TestBatchedReplayCancellation verifies the block-granularity ctx poll:
// a pre-cancelled context aborts the batched replay with the context's
// error before any request is served.
func TestBatchedReplayCancellation(t *testing.T) {
	w := testWorkload(1.0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteCtx(ctx, server.DefaultConfig(server.RedisLike, 1), w, server.AllFast()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestResetRunMatchesFreshDeployment is the snapshot/reset golden test:
// running seed B on a deployment rewound from a seed-A run must equal
// running seed B on a freshly populated deployment.
func TestResetRunMatchesFreshDeployment(t *testing.T) {
	w := testWorkload(0.8)
	for _, e := range goldenEngines {
		cfgA := server.DefaultConfig(e, 1000)
		d := server.NewDeployment(cfgA)
		if err := d.Load(w.Dataset, server.AllSlow()); err != nil {
			t.Fatal(err)
		}
		if _, err := RunCtx(context.Background(), d, w, 0); err != nil {
			t.Fatal(err)
		}
		if !d.ResetRun(2000) {
			t.Fatalf("%v: ResetRun refused a batch-capable deployment", e)
		}
		reused, err := RunCtx(context.Background(), d, w, 0)
		if err != nil {
			t.Fatal(err)
		}

		fresh := server.NewDeployment(server.DefaultConfig(e, 2000))
		if err := fresh.Load(w.Dataset, server.AllSlow()); err != nil {
			t.Fatal(err)
		}
		want, err := RunCtx(context.Background(), fresh, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reused, want) {
			t.Fatalf("%v: reused run diverged from fresh:\n  reused: %+v\n  fresh:  %+v", e, reused, want)
		}
	}
}

// TestExecuteMeanReuseBitIdentical pins the aggregate built on rewound
// deployments (the default) against the per-op reference, which
// repopulates per repetition — covering Session.Compare's repeated-runs
// savings end to end.
func TestExecuteMeanReuseBitIdentical(t *testing.T) {
	w := testWorkload(0.9)
	for _, workers := range []int{1, 4} {
		cfg := server.DefaultConfig(server.MemcachedLike, 31)
		got, err := ExecuteMeanWorkers(cfg, w, server.AllFast(), 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		ref := cfg
		ref.DisableBatchReplay = true
		want, err := ExecuteMeanWorkers(ref, w, server.AllFast(), 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: reuse aggregate diverged:\n  got:  %+v\n  want: %+v", workers, got, want)
		}
	}
}

// TestBatchedReplaySteadyStateZeroAllocs extends the zero-alloc pin to
// the kernel path: after warmup, a full batched pass must not allocate.
func TestBatchedReplaySteadyStateZeroAllocs(t *testing.T) {
	w := ycsb.MustGenerate(ycsb.Spec{
		Name: "alloc", Keys: 512, Requests: 4096,
		Dist:      ycsb.DistSpec{Kind: ycsb.Uniform},
		ReadRatio: 1.0, Sizes: ycsb.SizeFixed1KB, Seed: 9,
	})
	cfg := server.DefaultConfig(server.RedisLike, 3)
	cfg.NoiseSigma = 0 // keep the latency set closed across passes
	d := server.NewDeployment(cfg)
	if err := d.Load(w.Dataset, server.AllFast()); err != nil {
		t.Fatal(err)
	}
	tab := d.BatchTable()
	if tab == nil {
		t.Fatal("no batch table")
	}
	pt := w.Packed()
	classes := sizeClasses(w.Dataset.Records)
	a := newReplayAccum()
	ctx := context.Background()
	if err := replayBatched(ctx, d, tab, pt.Keys, pt.Kinds, classes, a, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := replayBatched(ctx, d, tab, pt.Keys, pt.Kinds, classes, a, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state batched replay allocates %.1f times per pass, want 0", allocs)
	}
}
