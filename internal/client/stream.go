package client

// Streamed-trace replay (DESIGN.md §16). A workload backed by a
// TraceStream arrives one self-delimiting frame at a time instead of as
// a materialized op slice, so resident memory stays O(frame) no matter
// how many requests the trace declares. Each frame is served through
// the batched replay kernel when it can be (read/write ops on live
// records), and per-op otherwise — deletes and re-inserting writes
// change store structure, which the precomputed cost table cannot
// price. The per-frame decision means one Delete-bearing frame in a
// 100M-op trace costs per-op replay for 4096 requests, not the run.
//
// Bit-identity contract: a streamed replay of a trace equals the whole-
// run per-op replay of the same ops. Read/write frames go through
// ReplayTable.Serve, already bit-identical to the per-op path by the
// §12 construction; per-op frames interleave via the pause-sync
// handshake (server.ReplayTable.SyncEnginePauses / ResyncKernelPauses /
// Deployment.RetryBatchTable) so the engines' own accounting resumes
// exactly where the kernel's mirror left it and vice versa.

import (
	"context"
	"fmt"
	"io"

	"mnemo/internal/kvstore"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// replayStream drives a stream-backed workload through the deployment
// frame by frame. Cancellation is polled once per frame (frames are
// replayBlockOps-sized, matching the in-memory paths' poll cadence);
// the simulated budget is checked per request on both sub-paths, and a
// scheduled crash truncates the trace at the same global request index
// the in-memory paths use.
func replayStream(ctx context.Context, d *server.Deployment, w *ycsb.Workload, classes []uint8, a *replayAccum, budget simclock.Duration) error {
	total := w.Stream.Requests()
	it, err := w.Stream.Frames()
	if err != nil {
		return fmt.Errorf("client: opening trace stream: %w", err)
	}
	crashAt := d.CrashOp()
	if crashAt >= total {
		crashAt = -1 // crash point beyond the trace: never fires
	}
	start := d.Clock()
	var maxClock simclock.Duration
	if budget > 0 {
		maxClock = start + budget
	}
	t := d.BatchTable()
	batching := t != nil // retry re-pricing only if batching was ever on
	var lat []simclock.Duration
	if t != nil {
		lat = t.Block()
	}
	var dead []bool // records deleted by this run; nil until first Delete
	done := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		keys, kinds, rw, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("client: decoding trace frame at request %d: %w", done, err)
		}
		crashed := false
		if crashAt >= 0 && crashAt < done+len(keys) {
			n := crashAt - done
			keys, kinds = keys[:n], kinds[:n]
			crashed = true
		}
		// A frame is batchable when the kernel is available, the frame
		// carries only reads and overwrites, and none of its records
		// were deleted earlier in the run (their cost rows are stale,
		// and a write to one is a structural re-insert).
		servable := t != nil && rw
		if servable && dead != nil {
			for _, k := range keys {
				if dead[k] {
					servable = false
					break
				}
			}
		}
		if servable {
			served := t.Serve(keys, kinds, maxClock, lat)
			for i := 0; i < served; i++ {
				a.observe(kvstore.OpKind(kinds[i]), int(classes[keys[i]]), float64(lat[i].Nanoseconds()))
			}
			if served < len(keys) {
				return fmt.Errorf("%w after %d/%d requests (simulated %v > budget %v)",
					ErrRunTimeout, done+served, total, d.Clock()-start, budget)
			}
			done += served
		} else {
			if t != nil {
				t.SyncEnginePauses()
			}
			structural := false
			for i, k := range keys {
				kind := kvstore.OpKind(kinds[i])
				switch kind {
				case kvstore.Delete:
					if dead == nil {
						dead = make([]bool, len(classes))
					}
					if !dead[k] {
						dead[k] = true
						structural = true
					}
				case kvstore.Write:
					if dead != nil && dead[k] {
						dead[k] = false // re-insert of a deleted record
						structural = true
					}
				}
				res := d.DoIndex(int(k), kind)
				a.observe(kind, int(classes[k]), float64(res.Latency.Nanoseconds()))
				if budget > 0 && d.Clock()-start > budget {
					return fmt.Errorf("%w after %d/%d requests (simulated %v > budget %v)",
						ErrRunTimeout, done+i+1, total, d.Clock()-start, budget)
				}
			}
			done += len(keys)
			if structural {
				d.MarkMutated()
				if batching {
					if t = d.RetryBatchTable(dead); t != nil {
						lat = t.Block()
					}
				}
			} else if t != nil {
				t.ResyncKernelPauses()
			}
		}
		if crashed {
			return d.CrashError()
		}
	}
	if done != total {
		return fmt.Errorf("client: trace stream ended after %d of %d requests", done, total)
	}
	return nil
}
