// Package client is the YCSB-like load driver of the reproduction: it
// replays a workload trace against a hybrid deployment (routing every
// request to the server instance that owns the key, as the paper's
// modified YCSB core module does) and measures what the paper measures —
// total runtime, throughput, average read/write response times, and the
// tail latencies of Fig 8d/8e.
package client

import (
	"fmt"
	"sort"

	"mnemo/internal/kvstore"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/stats"
	"mnemo/internal/ycsb"
)

// RunStats are the client-side measurements of one workload execution.
type RunStats struct {
	Workload string
	Engine   string

	Requests int
	Reads    int
	Writes   int

	Runtime          simclock.Duration
	ThroughputOpsSec float64

	// Average response times per request kind, in nanoseconds — the
	// FastReadTime/SlowReadTime/FastWriteTime/SlowWriteTime inputs of
	// Mnemo's estimate model when measured on a baseline placement.
	AvgReadNs  float64
	AvgWriteNs float64
	AvgNs      float64

	// Latency percentiles in nanoseconds (Fig 8c–8e).
	P50Ns, P95Ns, P99Ns, MaxNs float64

	// LLCHitRate is the record-cache hit fraction over the run.
	LLCHitRate float64

	// ReadBuckets and WriteBuckets break the averages down by
	// power-of-two record-size class, feeding the size-aware estimate
	// extension. Empty buckets are omitted.
	ReadBuckets, WriteBuckets []BucketStat

	// ReadLatency and WriteLatency carry the full per-size-class latency
	// histograms of the run, feeding the tail-latency estimation
	// extension (internal/core TailEstimator). Empty classes are
	// omitted.
	ReadLatency, WriteLatency []BucketHistogram
}

// BucketHistogram pairs a record-size class with the latency histogram
// of its requests.
type BucketHistogram struct {
	Bucket int
	Hist   *stats.Histogram
}

// HistFor returns the histogram of a size class, or nil if unobserved.
func HistFor(bhs []BucketHistogram, bucket int) *stats.Histogram {
	for _, bh := range bhs {
		if bh.Bucket == bucket {
			return bh.Hist
		}
	}
	return nil
}

// latencyHistParams are shared by every per-class histogram so mixtures
// across runs and classes are well defined.
const (
	latencyHistMin    = 100  // ns
	latencyHistGrowth = 1.02 // ≤2% quantile error
)

// histAccum collects per-bucket latency histograms during a run.
type histAccum struct {
	m map[int]*stats.Histogram
}

func newHistAccum() *histAccum { return &histAccum{m: map[int]*stats.Histogram{}} }

func (a *histAccum) add(size int, ns float64) {
	b := SizeBucket(size)
	h, ok := a.m[b]
	if !ok {
		h = stats.NewHistogram(latencyHistMin, latencyHistGrowth)
		a.m[b] = h
	}
	h.Record(ns)
}

func (a *histAccum) histograms() []BucketHistogram {
	out := make([]BucketHistogram, 0, len(a.m))
	for b, h := range a.m {
		out = append(out, BucketHistogram{Bucket: b, Hist: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bucket < out[j].Bucket })
	return out
}

// mergeHistograms folds run B's per-class histograms into run A's.
func mergeHistograms(a, b []BucketHistogram) []BucketHistogram {
	byBucket := map[int]*stats.Histogram{}
	for _, bh := range a {
		byBucket[bh.Bucket] = bh.Hist
	}
	for _, bh := range b {
		if h, ok := byBucket[bh.Bucket]; ok {
			h.Merge(bh.Hist)
		} else {
			byBucket[bh.Bucket] = bh.Hist
		}
	}
	out := make([]BucketHistogram, 0, len(byBucket))
	for bkt, h := range byBucket {
		out = append(out, BucketHistogram{Bucket: bkt, Hist: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bucket < out[j].Bucket })
	return out
}

// String summarizes the run for logs.
func (s RunStats) String() string {
	return fmt.Sprintf("%s/%s: %d ops in %v (%.0f ops/s, avg %.1fµs, p99 %.1fµs)",
		s.Engine, s.Workload, s.Requests, s.Runtime, s.ThroughputOpsSec,
		s.AvgNs/1000, s.P99Ns/1000)
}

// Run replays the workload trace against an already-loaded deployment.
func Run(d *server.Deployment, w *ycsb.Workload) RunStats {
	start := d.Clock()
	var readSum, writeSum stats.Summary
	readBuckets, writeBuckets := newBucketAccum(), newBucketAccum()
	readHists, writeHists := newHistAccum(), newHistAccum()
	hist := stats.NewHistogram(latencyHistMin, latencyHistGrowth)
	for _, op := range w.Ops {
		rec := w.Dataset.Records[op.Key]
		res := d.Do(rec.Key, op.Kind, rec.Size)
		ns := float64(res.Latency.Nanoseconds())
		hist.Record(ns)
		if op.Kind == kvstore.Read {
			readSum.Add(ns)
			readBuckets.add(rec.Size, ns)
			readHists.add(rec.Size, ns)
		} else {
			writeSum.Add(ns)
			writeBuckets.add(rec.Size, ns)
			writeHists.add(rec.Size, ns)
		}
	}
	runtime := d.Clock() - start
	out := RunStats{
		Workload: w.Spec.Name,
		Engine:   d.Engine().String(),
		Requests: len(w.Ops),
		Reads:    readSum.N(),
		Writes:   writeSum.N(),
		Runtime:  runtime,
	}
	if runtime > 0 {
		out.ThroughputOpsSec = float64(len(w.Ops)) / runtime.Seconds()
	}
	out.AvgReadNs = readSum.Mean()
	out.AvgWriteNs = writeSum.Mean()
	out.AvgNs = hist.Mean()
	out.P50Ns = hist.Quantile(0.50)
	out.P95Ns = hist.Quantile(0.95)
	out.P99Ns = hist.Quantile(0.99)
	out.MaxNs = hist.Max()
	if llc := d.Machine().LLC(); llc != nil {
		out.LLCHitRate = llc.HitRate()
	}
	out.ReadBuckets = readBuckets.stats()
	out.WriteBuckets = writeBuckets.stats()
	out.ReadLatency = readHists.histograms()
	out.WriteLatency = writeHists.histograms()
	return out
}

// Execute builds a fresh deployment, loads the dataset under the given
// placement (the untimed load phase) and replays the trace.
func Execute(cfg server.Config, w *ycsb.Workload, p server.Placement) (RunStats, error) {
	d := server.NewDeployment(cfg)
	if err := d.Load(w.Dataset, p); err != nil {
		return RunStats{}, err
	}
	return Run(d, w), nil
}

// ExecuteMean runs the workload `runs` times with distinct noise seeds
// and returns the per-field means — the paper reports "the mean of
// multiple experiment runs". Percentiles are averaged across runs.
func ExecuteMean(cfg server.Config, w *ycsb.Workload, p server.Placement, runs int) (RunStats, error) {
	if runs <= 0 {
		return RunStats{}, fmt.Errorf("client: runs %d must be positive", runs)
	}
	var agg RunStats
	for i := 0; i < runs; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1009
		st, err := Execute(c, w, p)
		if err != nil {
			return RunStats{}, err
		}
		if i == 0 {
			agg = st
			continue
		}
		agg.ReadBuckets = mergeBuckets(agg.ReadBuckets, st.ReadBuckets)
		agg.WriteBuckets = mergeBuckets(agg.WriteBuckets, st.WriteBuckets)
		agg.ReadLatency = mergeHistograms(agg.ReadLatency, st.ReadLatency)
		agg.WriteLatency = mergeHistograms(agg.WriteLatency, st.WriteLatency)
		agg.Runtime += st.Runtime
		agg.ThroughputOpsSec += st.ThroughputOpsSec
		agg.AvgReadNs += st.AvgReadNs
		agg.AvgWriteNs += st.AvgWriteNs
		agg.AvgNs += st.AvgNs
		agg.P50Ns += st.P50Ns
		agg.P95Ns += st.P95Ns
		agg.P99Ns += st.P99Ns
		agg.MaxNs += st.MaxNs
		agg.LLCHitRate += st.LLCHitRate
	}
	n := float64(runs)
	agg.Runtime = simclock.Duration(float64(agg.Runtime) / n)
	agg.ThroughputOpsSec /= n
	agg.AvgReadNs /= n
	agg.AvgWriteNs /= n
	agg.AvgNs /= n
	agg.P50Ns /= n
	agg.P95Ns /= n
	agg.P99Ns /= n
	agg.MaxNs /= n
	agg.LLCHitRate /= n
	return agg, nil
}
