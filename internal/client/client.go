// Package client is the YCSB-like load driver of the reproduction: it
// replays a workload trace against a hybrid deployment (routing every
// request to the server instance that owns the key, as the paper's
// modified YCSB core module does) and measures what the paper measures —
// total runtime, throughput, average read/write response times, and the
// tail latencies of Fig 8d/8e.
package client

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"mnemo/internal/kvstore"
	"mnemo/internal/obs"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/stats"
	"mnemo/internal/ycsb"
)

// RunStats are the client-side measurements of one workload execution.
type RunStats struct {
	Workload string
	Engine   string

	Requests int
	Reads    int
	Writes   int

	Runtime          simclock.Duration
	ThroughputOpsSec float64

	// Average response times per request kind, in nanoseconds — the
	// FastReadTime/SlowReadTime/FastWriteTime/SlowWriteTime inputs of
	// Mnemo's estimate model when measured on a baseline placement.
	AvgReadNs  float64
	AvgWriteNs float64
	AvgNs      float64

	// Latency percentiles in nanoseconds (Fig 8c–8e).
	P50Ns, P95Ns, P99Ns, MaxNs float64

	// LLCHitRate is the record-cache hit fraction over the run.
	LLCHitRate float64

	// ReadBuckets and WriteBuckets break the averages down by
	// power-of-two record-size class, feeding the size-aware estimate
	// extension. Empty buckets are omitted.
	ReadBuckets, WriteBuckets []BucketStat

	// ReadLatency and WriteLatency carry the full per-size-class latency
	// histograms of the run, feeding the tail-latency estimation
	// extension (internal/core TailEstimator). Empty classes are
	// omitted.
	ReadLatency, WriteLatency []BucketHistogram

	// RunsRequested, RunsUsed, RunsRetried and Degraded summarize an
	// ExecuteMean* aggregate's resilience: repetitions requested, the
	// survivors the means were folded from, and retry attempts spent.
	// Degraded marks an aggregate computed from fewer runs than
	// requested — or, for a sharded run, from fewer shards than the
	// cluster holds. Single-run stats leave all four zero.
	RunsRequested, RunsUsed, RunsRetried int
	Degraded                             bool

	// ShardsFailed, ShardsHedged and ShardsRetried summarize a sharded
	// run's fault-domain remediation: shards dead after exhausting their
	// per-shard retries (skipped by the partial merge, within the
	// policy's shard fault budget), straggler shards speculatively
	// re-executed, and per-shard retry attempts spent. Aggregates sum
	// them across surviving repetitions. All zero off the fault-domain
	// path.
	ShardsFailed, ShardsHedged, ShardsRetried int
	// DegradedReasons carries the shard-attributed explanations of a
	// degraded result ("shard 3: server: injected crash fault …"), in
	// ascending shard order within each run.
	DegradedReasons []string

	// Epochs, MovesApplied, MigratedBytes and MigrationNs summarize an
	// adaptive run's online migration (DESIGN.md §15): epochs served,
	// records migrated between tiers, payload bytes copied, and the
	// simulated time charged for the copies. Aggregates sum them across
	// surviving repetitions. All zero on the static path.
	Epochs        int
	MovesApplied  int
	MigratedBytes int64
	MigrationNs   float64
	// EpochTraffic breaks the migration down per epoch (epochs where the
	// policy was consulted; the final epoch is not, since no requests
	// remain to recoup a migration). Aggregates merge rows by epoch.
	EpochTraffic []EpochTraffic
}

// EpochTraffic is one epoch's migration activity.
type EpochTraffic struct {
	Epoch  int
	Moves  int
	Bytes  int64
	CostNs float64
}

// BucketHistogram pairs a record-size class with the latency histogram
// of its requests.
type BucketHistogram struct {
	Bucket int
	Hist   *stats.Histogram
}

// HistFor returns the histogram of a size class, or nil if unobserved.
func HistFor(bhs []BucketHistogram, bucket int) *stats.Histogram {
	for _, bh := range bhs {
		if bh.Bucket == bucket {
			return bh.Hist
		}
	}
	return nil
}

// latencyHistParams are shared by every per-class histogram so mixtures
// across runs and classes are well defined.
const (
	latencyHistMin    = 100  // ns
	latencyHistGrowth = 1.02 // ≤2% quantile error
)

// histAccum collects per-bucket latency histograms during a run. It is a
// slice indexed by size class, so the per-op path does no map hashing;
// slots materialize lazily on first observation and the slice only grows
// while a new class is being discovered.
type histAccum struct {
	hists []*stats.Histogram // indexed by bucket; nil = unobserved
}

func (a *histAccum) add(bucket int, ns float64) {
	if bucket >= len(a.hists) {
		grown := make([]*stats.Histogram, bucket+1)
		copy(grown, a.hists)
		a.hists = grown
	}
	h := a.hists[bucket]
	if h == nil {
		h = stats.NewHistogram(latencyHistMin, latencyHistGrowth)
		a.hists[bucket] = h
	}
	h.Record(ns)
}

func (a *histAccum) histograms() []BucketHistogram {
	var out []BucketHistogram
	for b, h := range a.hists {
		if h != nil {
			out = append(out, BucketHistogram{Bucket: b, Hist: h})
		}
	}
	return out
}

// bucketStats derives the per-class count/mean breakdown from the class
// histograms, which track exact counts and sums as they record — so the
// replay loop maintains one accumulator per class instead of two.
func (a *histAccum) bucketStats() []BucketStat {
	var out []BucketStat
	for b, h := range a.hists {
		if h != nil && h.N() > 0 {
			out = append(out, BucketStat{Bucket: b, Count: int(h.N()), MeanNs: h.Mean()})
		}
	}
	return out
}

// countAndSum folds the class histograms' exact totals into one request
// count and latency sum.
func (a *histAccum) countAndSum() (int, float64) {
	n, sum := 0, 0.0
	for _, h := range a.hists {
		if h != nil {
			n += int(h.N())
			sum += h.Sum()
		}
	}
	return n, sum
}

// mergeHistograms folds run B's per-class histograms into run A's.
func mergeHistograms(a, b []BucketHistogram) []BucketHistogram {
	byBucket := map[int]*stats.Histogram{}
	for _, bh := range a {
		byBucket[bh.Bucket] = bh.Hist
	}
	for _, bh := range b {
		if h, ok := byBucket[bh.Bucket]; ok {
			h.Merge(bh.Hist)
		} else {
			byBucket[bh.Bucket] = bh.Hist
		}
	}
	out := make([]BucketHistogram, 0, len(byBucket))
	for bkt, h := range byBucket {
		out = append(out, BucketHistogram{Bucket: bkt, Hist: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bucket < out[j].Bucket })
	return out
}

// String summarizes the run for logs.
func (s RunStats) String() string {
	return fmt.Sprintf("%s/%s: %d ops in %v (%.0f ops/s, avg %.1fµs, p99 %.1fµs)",
		s.Engine, s.Workload, s.Requests, s.Runtime, s.ThroughputOpsSec,
		s.AvgNs/1000, s.P99Ns/1000)
}

// replayAccum is the per-run accumulator state of the replay loop, kept
// separate from RunStats assembly so the steady-state per-op cost — and
// its allocation count, pinned at zero by the client tests — is exactly
// the observe path below. One size-class histogram per request kind is
// the complete state: counts, sums, means and buckets all derive from
// the class histograms afterwards.
type replayAccum struct {
	readHists, writeHists histAccum
}

func newReplayAccum() *replayAccum { return &replayAccum{} }

// observe folds one served request into the accumulators, classified by
// its record's precomputed size class. Every request lands in exactly one
// size-class histogram; the run-level histogram is recovered afterwards by
// merging the classes, so the per-op path records each latency once
// instead of twice.
func (a *replayAccum) observe(kind kvstore.OpKind, bucket int, ns float64) {
	if kind == kvstore.Read {
		a.readHists.add(bucket, ns)
	} else {
		a.writeHists.add(bucket, ns)
	}
}

// sizeClasses computes each record's power-of-two size class once, so the
// replay loop reads a byte from an L1-resident table instead of chasing
// into the records array and re-deriving the bucket per request.
func sizeClasses(recs []ycsb.Record) []uint8 {
	classes := make([]uint8, len(recs))
	for i := range recs {
		classes[i] = uint8(SizeBucket(recs[i].Size))
	}
	return classes
}

// replayBlockOps is the replay block size shared by both replay paths,
// equal to the batched kernel's server.ReplayBlockOps. It replaces the
// per-op `i&4095 == 4095` cancellation poll of the original loop: one
// ctx check per 4096-request block bounds wall-clock cancellation
// latency to microseconds (replay advances only simulated time) while
// keeping every block-granularity branch — cancellation, and the choice
// between the budget-checking and unbudgeted inner loops — off the
// steady-state per-op path.
const replayBlockOps = server.ReplayBlockOps

// replay drives the workload trace through the deployment's
// index-addressed request path, folding every response into the
// accumulators. The loop body does no string work: requests address
// records by trace index, size classes come from the precomputed table,
// and the accumulators are slice-indexed.
func replay(d *server.Deployment, w *ycsb.Workload, classes []uint8, a *replayAccum) {
	_ = replayBounded(context.Background(), d, w.Ops, classes, a, 0)
}

// replayBounded is the per-operation replay path under a watchdog: a
// per-run budget in simulated time (0 = unbounded, checked every request
// so an injected stall is caught at the op where the clock jumped) and a
// cancellable context, polled once per replayBlockOps-request block. The
// common unbudgeted case runs an inner loop with no per-op checks at
// all; both variants stay allocation-free.
func replayBounded(ctx context.Context, d *server.Deployment, ops []ycsb.Op, classes []uint8, a *replayAccum, budget simclock.Duration) error {
	return replayBoundedChunk(ctx, d, ops, classes, a, budget, d.Clock(), 0, len(ops))
}

// replayBoundedChunk is the per-operation replay of one trace chunk
// inside a larger run: the budget is measured against the run's start
// clock and progress is reported in run-global request indices, so an
// epoch-chunked run times out at the same request, with the same
// message, as an unchunked one. replayBounded is the whole-trace case
// (start = now, done = 0, total = len(ops)).
func replayBoundedChunk(ctx context.Context, d *server.Deployment, ops []ycsb.Op, classes []uint8, a *replayAccum, budget simclock.Duration, start simclock.Duration, done, total int) error {
	for blk := 0; blk < len(ops); blk += replayBlockOps {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := blk + replayBlockOps
		if end > len(ops) {
			end = len(ops)
		}
		if budget <= 0 {
			for _, op := range ops[blk:end] {
				res := d.DoIndex(op.Key, op.Kind)
				a.observe(op.Kind, int(classes[op.Key]), float64(res.Latency.Nanoseconds()))
			}
			continue
		}
		for i := blk; i < end; i++ {
			op := ops[i]
			res := d.DoIndex(op.Key, op.Kind)
			a.observe(op.Kind, int(classes[op.Key]), float64(res.Latency.Nanoseconds()))
			if d.Clock()-start > budget {
				return fmt.Errorf("%w after %d/%d requests (simulated %v > budget %v)",
					ErrRunTimeout, done+i+1, total, d.Clock()-start, budget)
			}
		}
	}
	return nil
}

// replayBatched drives the workload through the deployment's batched
// replay kernel: the packed struct-of-arrays trace is served one
// replayBlockOps block at a time by ReplayTable.Serve, and the returned
// per-request latencies are folded into the accumulators afterwards.
// Cancellation is polled per block, like replayBounded; the simulated
// budget becomes an absolute clock bound the kernel checks after each
// request, so a budget-tripping run reports the same request index, the
// same clock reading — and, being built from the same pricing constants
// and the same noise draws, the same latencies — as the per-op path.
func replayBatched(ctx context.Context, d *server.Deployment, t *server.ReplayTable, keys []uint32, kinds []uint8, classes []uint8, a *replayAccum, budget simclock.Duration) error {
	return replayBatchedChunk(ctx, d, t, keys, kinds, classes, a, budget, d.Clock(), 0, len(keys))
}

// replayBatchedChunk is the batched replay of one trace chunk inside a
// larger run, with the budget anchored at the run's start clock and
// progress reported in run-global request indices — the batched twin of
// replayBoundedChunk.
func replayBatchedChunk(ctx context.Context, d *server.Deployment, t *server.ReplayTable, keys []uint32, kinds []uint8, classes []uint8, a *replayAccum, budget simclock.Duration, start simclock.Duration, done, total int) error {
	var maxClock simclock.Duration
	if budget > 0 {
		maxClock = start + budget
	}
	lat := t.Block()
	for blk := 0; blk < len(keys); blk += replayBlockOps {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := blk + replayBlockOps
		if end > len(keys) {
			end = len(keys)
		}
		bkeys, bkinds := keys[blk:end], kinds[blk:end]
		served := t.Serve(bkeys, bkinds, maxClock, lat)
		for i := 0; i < served; i++ {
			a.observe(kvstore.OpKind(bkinds[i]), int(classes[bkeys[i]]), float64(lat[i].Nanoseconds()))
		}
		if served < len(bkeys) {
			return fmt.Errorf("%w after %d/%d requests (simulated %v > budget %v)",
				ErrRunTimeout, done+blk+served, total, d.Clock()-start, budget)
		}
	}
	return nil
}

// mergedHistogram folds the per-size-class histograms of both request
// kinds into one run-level histogram. Since each request was recorded in
// exactly one class, the merged counts, extrema and quantiles equal those
// of a histogram fed directly per request.
func mergedHistogram(groups ...[]BucketHistogram) *stats.Histogram {
	h := stats.NewHistogram(latencyHistMin, latencyHistGrowth)
	for _, g := range groups {
		for _, bh := range g {
			h.Merge(bh.Hist)
		}
	}
	return h
}

// Run replays the workload trace against an already-loaded deployment.
func Run(d *server.Deployment, w *ycsb.Workload) RunStats {
	st, err := RunCtx(context.Background(), d, w, 0)
	if err != nil {
		// Unreachable: no budget and an uncancellable context.
		panic(err)
	}
	return st
}

// RunCtx is Run with cancellation and a per-run simulated-time budget
// (0 = unbounded). A run cut off by either returns the error and no
// stats: partial measurements are discarded, never folded into means.
//
// A deployment fated to crash mid-run (FaultSpec.CrashProb) serves the
// trace prefix before its crash point — burning simulated time and
// telemetry like a dying server — and then fails with a *FaultError of
// kind FaultCrash. A timeout or cancellation striking inside the prefix
// wins over the scheduled crash, first-to-fire.
func RunCtx(ctx context.Context, d *server.Deployment, w *ycsb.Workload, budget simclock.Duration) (RunStats, error) {
	start := d.Clock()
	a := newReplayAccum()
	classes := sizeClasses(w.Dataset.Records)
	var tel epochTelemetry
	var err error
	if src, epochOps := d.AdaptiveSpec(); src != nil && epochOps > 0 {
		if w.Stream != nil {
			// Epoch chunking needs random access into the trace to
			// re-run boundary analysis; a streamed trace has none.
			return RunStats{}, fmt.Errorf("client: adaptive tiering (EpochOps) does not support streamed traces")
		}
		tel, err = replayEpochs(ctx, d, src, epochOps, w, classes, a, budget)
	} else {
		err = replayStatic(ctx, d, w, classes, a, budget)
	}
	if err != nil {
		return RunStats{}, err
	}
	requests := w.RequestCount()
	runtime := d.Clock() - start
	reads, readSum := a.readHists.countAndSum()
	writes, writeSum := a.writeHists.countAndSum()
	out := RunStats{
		Workload: w.Spec.Name,
		Engine:   d.Engine().String(),
		Requests: requests,
		Reads:    reads,
		Writes:   writes,
		Runtime:  runtime,
	}
	if runtime > 0 {
		out.ThroughputOpsSec = float64(requests) / runtime.Seconds()
	}
	out.ReadBuckets = a.readHists.bucketStats()
	out.WriteBuckets = a.writeHists.bucketStats()
	out.ReadLatency = a.readHists.histograms()
	out.WriteLatency = a.writeHists.histograms()
	hist := mergedHistogram(out.ReadLatency, out.WriteLatency)
	if reads > 0 {
		out.AvgReadNs = readSum / float64(reads)
	}
	if writes > 0 {
		out.AvgWriteNs = writeSum / float64(writes)
	}
	out.AvgNs = hist.Mean()
	out.P50Ns = hist.Quantile(0.50)
	out.P95Ns = hist.Quantile(0.95)
	out.P99Ns = hist.Quantile(0.99)
	out.MaxNs = hist.Max()
	if llc := d.Machine().LLC(); llc != nil {
		out.LLCHitRate = llc.HitRate()
	}
	out.Epochs = tel.epochs
	out.MovesApplied = tel.moves
	out.MigratedBytes = tel.bytes
	out.MigrationNs = tel.costNs
	out.EpochTraffic = tel.traffic
	return out, nil
}

// replayStatic is the legacy single-placement replay — the whole trace
// in one pass, batched when the deployment and trace support it. It is
// the EpochOps=0 path and stays bit-identical to the pre-adaptive stack.
func replayStatic(ctx context.Context, d *server.Deployment, w *ycsb.Workload, classes []uint8, a *replayAccum, budget simclock.Duration) error {
	if w.Stream != nil {
		return replayStream(ctx, d, w, classes, a, budget)
	}
	crashAt := d.CrashOp()
	var err error
	if t := d.BatchTable(); t != nil && w.Packed().Batchable() {
		pt := w.Packed()
		keys, kinds := pt.Keys, pt.Kinds
		if crashAt >= 0 && crashAt < len(keys) {
			keys, kinds = keys[:crashAt], kinds[:crashAt]
		} else {
			crashAt = -1 // crash point beyond the trace: never fires
		}
		err = replayBatched(ctx, d, t, keys, kinds, classes, a, budget)
	} else if w.Ops == nil && w.RequestCount() > 0 {
		// A packed-only trace (a shard partitioner sub-workload) cannot
		// drive the per-operation path; failing beats silently replaying
		// zero requests.
		return fmt.Errorf("client: packed-only trace requires the batched replay path")
	} else {
		ops := w.Ops
		if crashAt >= 0 && crashAt < len(ops) {
			ops = ops[:crashAt]
		} else {
			crashAt = -1
		}
		err = replayBounded(ctx, d, ops, classes, a, budget)
	}
	if err == nil && crashAt >= 0 {
		err = d.CrashError()
	}
	return err
}

// Execute builds a fresh deployment, loads the dataset under the given
// placement (the untimed load phase) and replays the trace.
func Execute(cfg server.Config, w *ycsb.Workload, p server.Placement) (RunStats, error) {
	return ExecuteCtx(context.Background(), cfg, w, p)
}

// ExecuteCtx is Execute with cancellation. It also honors the config's
// hardening knobs: a deployment fated to fail by cfg.Fault returns its
// *server.FaultError before loading (a dead server is noticed at connect
// time), and cfg.RunTimeout bounds the replay in simulated time.
//
// When cfg.Obs is set, each execution journals measurement start/finish
// (or timeout) events and publishes run/op counters; the deployment's
// own counters are flushed even when the replay is cut off mid-run, so
// partial runs stay observable.
// With cfg.Shards ≥ 1 execution routes through the consistent-hash
// cluster (sharded.go); Shards=1 is bit-identical to the unsharded
// path, per the golden equivalence tests.
func ExecuteCtx(ctx context.Context, cfg server.Config, w *ycsb.Workload, p server.Placement) (RunStats, error) {
	if cfg.Shards >= 1 {
		st, _, err := executeShardedFresh(ctx, cfg, w, p, Policy{})
		return st, err
	}
	st, _, err := executeFresh(ctx, cfg, w, p)
	return st, err
}

// executeFresh is ExecuteCtx returning the deployment it built, so
// callers that run the workload repeatedly (ExecuteMean's repetitions)
// can keep a batch-capable deployment and rewind it with executeReused
// instead of re-populating the store per run. The deployment is non-nil
// exactly when Load succeeded — including runs that then timed out,
// which leave the deployment reusable.
func executeFresh(ctx context.Context, cfg server.Config, w *ycsb.Workload, p server.Placement) (RunStats, *server.Deployment, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, nil, err
	}
	sink := cfg.Obs
	sink.Eventf(obs.EventMeasureStart, "client", 0, "%s on %s (seed %d)",
		w.Spec.Name, cfg.Engine, cfg.Seed)
	d := server.NewDeployment(cfg)
	if err := d.InjectedFailure(); err != nil {
		sink.Counter("mnemo_client_run_failures_total").Inc()
		return RunStats{}, nil, err
	}
	if err := d.Load(w.Dataset, p); err != nil {
		sink.Counter("mnemo_client_run_failures_total").Inc()
		return RunStats{}, nil, err
	}
	st, err := runAndFlush(ctx, cfg, w, d)
	return st, d, err
}

// executeReused is executeFresh against a deployment kept from an
// earlier repetition: the populated store is rewound to its post-Load
// snapshot under the new seed (server.Deployment.ResetRun) instead of
// being rebuilt. The event and counter sequence — measurement start,
// deployment counted, fault fates journaled, run counters — is emitted
// in the fresh path's order, so an observer cannot tell the two paths
// apart. Valid only for deployments cached via canReuse.
func executeReused(ctx context.Context, cfg server.Config, w *ycsb.Workload, d *server.Deployment) (RunStats, error) {
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	sink := cfg.Obs
	sink.Eventf(obs.EventMeasureStart, "client", 0, "%s on %s (seed %d)",
		w.Spec.Name, cfg.Engine, cfg.Seed)
	if !d.ResetRun(cfg.Seed) {
		return RunStats{}, fmt.Errorf("client: cached deployment lost its batch table")
	}
	if err := d.InjectedFailure(); err != nil {
		sink.Counter("mnemo_client_run_failures_total").Inc()
		return RunStats{}, err
	}
	return runAndFlush(ctx, cfg, w, d)
}

// canReuse reports whether a deployment that just executed this workload
// can serve further repetitions via ResetRun: the replay must have gone
// through the batched kernel (the per-op path mutates engine state the
// snapshot does not cover), and the placement must not have migrated
// mid-run (ApplyMoves leaves the store contents diverged from the
// post-Load snapshot, so adaptive runs that moved records rebuild fresh).
func canReuse(d *server.Deployment, w *ycsb.Workload) bool {
	return d != nil && !d.Migrated() && d.BatchTable() != nil && w.Packed().Batchable()
}

// runAndFlush is the shared back half of the execute paths: the bounded
// replay, the post-run telemetry flush (covering complete and cut-off
// replays alike) and the run-level counters and journal events.
func runAndFlush(ctx context.Context, cfg server.Config, w *ycsb.Workload, d *server.Deployment) (RunStats, error) {
	sink := cfg.Obs
	st, err := RunCtx(ctx, d, w, cfg.RunTimeout)
	d.FlushObs() // publish op/LLC counts of complete AND cut-off replays
	if err != nil {
		if errors.Is(err, ErrRunTimeout) {
			sink.Counter("mnemo_client_run_timeouts_total").Inc()
			sink.Eventf(obs.EventTimeout, "client", d.Clock(), "%s on %s: %v",
				w.Spec.Name, cfg.Engine, err)
		} else {
			sink.Counter("mnemo_client_run_failures_total").Inc()
		}
		return st, err
	}
	sink.Counter("mnemo_client_runs_total").Inc()
	sink.Counter("mnemo_client_ops_total").Add(int64(st.Requests))
	sink.Counter("mnemo_client_reads_total").Add(int64(st.Reads))
	sink.Counter("mnemo_client_writes_total").Add(int64(st.Writes))
	sink.Eventf(obs.EventMeasureEnd, "client", st.Runtime, "%s on %s: %d ops, %.0f ops/s",
		w.Spec.Name, cfg.Engine, st.Requests, st.ThroughputOpsSec)
	return st, err
}

// ExecuteMean runs the workload `runs` times with distinct noise seeds
// and returns the per-field means — the paper reports "the mean of
// multiple experiment runs". Percentiles are averaged across runs.
// Repetitions execute in parallel across a bounded worker pool; see
// ExecuteMeanWorkers for the determinism contract.
func ExecuteMean(cfg server.Config, w *ycsb.Workload, p server.Placement, runs int) (RunStats, error) {
	return ExecuteMeanWorkers(cfg, w, p, runs, 0)
}

// ExecuteMeanWorkers is ExecuteMean with an explicit worker bound
// (≤ 0 = GOMAXPROCS). Each repetition is an independent simulation —
// its own deployment, noise stream seeded from the run index, and
// accumulators — and results are folded in run-index order, so the
// returned RunStats are bit-identical for every worker count: workers=1
// is the serial reference execution of the same code path.
func ExecuteMeanWorkers(cfg server.Config, w *ycsb.Workload, p server.Placement, runs, workers int) (RunStats, error) {
	return ExecuteMeanCtx(context.Background(), cfg, w, p, runs, workers, Policy{})
}
