package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 1.05)
	b := NewHistogram(1, 1.05)
	for i := 1; i <= 100; i++ {
		a.Record(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Record(float64(i))
	}
	a.Merge(b)
	if a.N() != 200 {
		t.Fatalf("merged N = %d", a.N())
	}
	if !almostEqual(a.Mean(), 100.5, 1e-9) {
		t.Errorf("merged mean = %v", a.Mean())
	}
	if a.Max() != 200 || a.Min() != 1 {
		t.Errorf("merged extrema %v/%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med < 95 || med > 106 {
		t.Errorf("merged median = %v, want ≈100", med)
	}
}

func TestHistogramMergeIncompatiblePanics(t *testing.T) {
	a := NewHistogram(1, 1.05)
	b := NewHistogram(1, 1.10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Merge(b)
}

func TestHistogramCompatible(t *testing.T) {
	a := NewHistogram(1, 1.05)
	if !a.Compatible(NewHistogram(1, 1.05)) {
		t.Error("identical params reported incompatible")
	}
	if a.Compatible(NewHistogram(2, 1.05)) || a.Compatible(NewHistogram(1, 1.04)) {
		t.Error("different params reported compatible")
	}
}

func TestMixtureQuantileTwoComponents(t *testing.T) {
	// Component A around 10, component B around 1000, equal weights:
	// the median sits between them; p95 lands in B's range.
	a := NewHistogram(1, 1.02)
	b := NewHistogram(1, 1.02)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a.Record(10 * (1 + 0.05*rng.Float64()))
		b.Record(1000 * (1 + 0.05*rng.Float64()))
	}
	med := MixtureQuantile([]*Histogram{a, b}, []float64{1, 1}, 0.5)
	if med > 12 {
		t.Errorf("median %v should fall at the top of component A", med)
	}
	p95 := MixtureQuantile([]*Histogram{a, b}, []float64{1, 1}, 0.95)
	if p95 < 900 {
		t.Errorf("p95 %v should fall inside component B", p95)
	}
	// Weighting A 19:1 pushes p95 into A.
	p95w := MixtureQuantile([]*Histogram{a, b}, []float64{19, 1}, 0.95)
	if p95w > 12 {
		t.Errorf("weighted p95 %v should stay in component A", p95w)
	}
}

func TestMixtureQuantileMatchesExactOnPooledData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewHistogram(1e-3, 1.01)
	b := NewHistogram(1e-3, 1.01)
	var pooled []float64
	for i := 0; i < 30000; i++ {
		x := math.Exp(rng.NormFloat64())
		a.Record(x)
		pooled = append(pooled, x)
	}
	for i := 0; i < 10000; i++ {
		x := 5 * math.Exp(rng.NormFloat64())
		b.Record(x)
		pooled = append(pooled, x)
	}
	sort.Float64s(pooled)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := pooled[int(q*float64(len(pooled)))-1]
		got := MixtureQuantile([]*Histogram{a, b}, []float64{30000, 10000}, q)
		if rel := math.Abs(got-exact) / exact; rel > 0.03 {
			t.Errorf("q=%v: mixture %v vs exact %v (rel %.3f)", q, got, exact, rel)
		}
	}
}

func TestMixtureQuantileEdgeCases(t *testing.T) {
	a := NewHistogram(1, 1.05)
	a.Record(5)
	// Zero-weight and nil components are skipped.
	if got := MixtureQuantile([]*Histogram{a, nil}, []float64{1, 5}, 0.5); got == 0 {
		t.Error("nil component broke the mixture")
	}
	empty := NewHistogram(1, 1.05)
	if got := MixtureQuantile([]*Histogram{a, empty}, []float64{1, 1}, 0.5); got == 0 {
		t.Error("empty component broke the mixture")
	}
	// All-zero weights → 0.
	if got := MixtureQuantile([]*Histogram{a}, []float64{0}, 0.5); got != 0 {
		t.Errorf("zero-weight mixture = %v", got)
	}
	// Clamped q values do not panic.
	_ = MixtureQuantile([]*Histogram{a}, []float64{1}, 0)
	_ = MixtureQuantile([]*Histogram{a}, []float64{1}, 1)
}

func TestMixtureQuantilePanics(t *testing.T) {
	a := NewHistogram(1, 1.05)
	a.Record(1)
	b := NewHistogram(2, 1.05)
	b.Record(1)
	for _, fn := range []func(){
		func() { MixtureQuantile([]*Histogram{a}, []float64{1, 2}, 0.5) },
		func() { MixtureQuantile([]*Histogram{a, b}, []float64{1, 1}, 0.5) },
		func() { MixtureQuantile([]*Histogram{a}, []float64{-1}, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
