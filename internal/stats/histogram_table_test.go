package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestBucketTableMatchesLogFormula is the exactness contract of the
// boundary table: for every float64 the table must return the bucket the
// defining log formula returns — including one ulp either side of every
// tabulated boundary, where an off-by-one would silently skew quantiles.
func TestBucketTableMatchesLogFormula(t *testing.T) {
	for _, geom := range []struct{ min, growth float64 }{
		{100, 1.02},
		{100, 1.05},
		{1, 1.5},
		{0.25, 1.001},
	} {
		h := NewHistogram(geom.min, geom.growth)
		formula := func(v float64) int {
			if v <= h.minVal {
				return 0
			}
			return logBucket(v, h.minVal, h.logGrowth)
		}
		check := func(v float64) {
			t.Helper()
			if got, want := h.bucketFor(v), formula(v); got != want {
				t.Fatalf("geometry (%v, %v): bucketFor(%v) = %d, formula says %d",
					geom.min, geom.growth, v, got, want)
			}
		}
		for _, b := range h.table.bounds {
			check(math.Nextafter(b, 0))
			check(b)
			check(math.Nextafter(b, math.Inf(1)))
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 200000; i++ {
			// Log-uniform values spanning below minVal through past the
			// table's upper limit (exercising the formula fallback).
			v := math.Exp(rng.Float64()*math.Log(maxTableBound*100/geom.min)) * geom.min / 10
			check(v)
		}
		check(geom.min)
		check(maxTableBound)
		check(maxTableBound * 10)
	}
}

func TestBucketTableSharedAcrossHistograms(t *testing.T) {
	a, b := NewHistogram(100, 1.02), NewHistogram(100, 1.02)
	if a.table != b.table {
		t.Fatal("same geometry must share one boundary table")
	}
	c := NewHistogram(100, 1.05)
	if c.table == a.table {
		t.Fatal("different geometries must not share a table")
	}
}
