package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Histogram is a log-bucketed latency histogram in the spirit of HDR
// histograms: values are recorded into buckets whose width grows
// geometrically, giving bounded relative error for percentile queries at
// O(1) memory per recording. It is used by the client to track request
// latencies for the tail-latency figures (Fig 8d, 8e) without retaining
// every sample.
//
// The zero value is not usable; construct with NewHistogram.
type Histogram struct {
	growth    float64 // geometric bucket growth factor, > 1
	logGrowth float64 // cached math.Log(growth); spares one Log per Record
	minVal    float64 // lower bound of bucket 0
	table     *bucketTable
	counts    []int64
	total     int64
	sum       float64
	maxSeen   float64
	minSeen   float64
}

// NewHistogram creates a histogram whose buckets start at minVal and grow
// by the given factor per bucket. A growth of 1.05 bounds the relative
// quantile error at about 5%. It panics on invalid parameters.
func NewHistogram(minVal, growth float64) *Histogram {
	if minVal <= 0 {
		panic("stats: histogram minVal must be positive")
	}
	if growth <= 1 {
		panic("stats: histogram growth must exceed 1")
	}
	return &Histogram{
		growth:    growth,
		logGrowth: math.Log(growth),
		minVal:    minVal,
		table:     tableFor(minVal, growth),
		minSeen:   math.Inf(1),
	}
}

// logBucket is the defining bucket formula: values v > minVal land in
// bucket floor(log(v/minVal)/log(growth)) + 1. Record goes through a
// precomputed boundary table instead (bucketFor below), which by
// construction returns exactly this function's result for every float —
// the table spares two transcendental calls per recording, it does not
// change the geometry.
func logBucket(v, minVal, logGrowth float64) int {
	return int(math.Log(v/minVal)/logGrowth) + 1
}

// bucketFor maps a value to its bucket index (values below minVal share
// bucket 0).
func (h *Histogram) bucketFor(v float64) int {
	if v <= h.minVal {
		return 0
	}
	if t := h.table; t != nil && v < t.last {
		return t.lookup(v)
	}
	return logBucket(v, h.minVal, h.logGrowth)
}

// bucketTable precomputes the exact bucket boundaries of one (minVal,
// growth) geometry so the per-Record bucket lookup is a polynomial log2
// estimate snapped to the exact boundary array — no logarithms on the hot
// path. bounds[i] is the smallest float64 whose logBucket is i+2 (the
// boundary between buckets i+1 and i+2), found by ulp-walking around
// minVal·growth^(i+1), so table and formula agree on every input bit for
// bit.
type bucketTable struct {
	bounds        []float64
	last          float64 // bounds[len-1]; values at or above fall back to the formula
	log2Min       float64 // log2(minVal)
	invLog2Growth float64 // 1 / log2(growth)
}

// Boundaries are tabulated up to 1e15 (for latency histograms: ~11 days
// in nanoseconds); larger values are rare enough to pay the Log.
const maxTableBound = 1e15

func buildBucketTable(minVal, growth float64) *bucketTable {
	logGrowth := math.Log(growth)
	var bounds []float64
	for k := 1; ; k++ {
		v := minVal * math.Pow(growth, float64(k))
		if v > maxTableBound {
			break
		}
		// Pow lands within ulps of the true boundary; walk to the exact
		// smallest float the formula assigns to bucket k+1.
		for v > minVal && logBucket(v, minVal, logGrowth) >= k+1 {
			v = math.Nextafter(v, 0)
		}
		for v <= minVal || logBucket(v, minVal, logGrowth) < k+1 {
			v = math.Nextafter(v, math.Inf(1))
		}
		bounds = append(bounds, v)
	}
	if len(bounds) == 0 {
		return &bucketTable{last: minVal} // degenerate geometry, formula only
	}
	return &bucketTable{
		bounds:        bounds,
		last:          bounds[len(bounds)-1],
		log2Min:       math.Log2(minVal),
		invLog2Growth: 1 / math.Log2(growth),
	}
}

// lookup returns the bucket of v; the caller guarantees
// minVal < v < t.last. The bucket is 1 + (number of boundaries ≤ v). A
// quadratic estimate of log2(v) built from the raw float bits lands
// within a fraction of a bucket for common growth factors; the estimate
// is then snapped to the exact boundary array, so the result matches the
// defining formula bit for bit no matter how coarse the estimate was.
func (t *bucketTable) lookup(v float64) int {
	bits := math.Float64bits(v)
	m := 1 + float64(bits&(1<<52-1))*(1.0/(1<<52)) // mantissa in [1, 2)
	// Quadratic minimax fit of log2(m) on [1, 2); |error| < 0.009.
	log2 := float64(int(bits>>52&0x7ff)-1023) + (2.0248613-0.3448549*m)*m - 1.6799357
	c := int((log2 - t.log2Min) * t.invLog2Growth)
	if c < 0 {
		c = 0
	} else if c >= len(t.bounds) {
		c = len(t.bounds) - 1
	}
	for c < len(t.bounds) && t.bounds[c] <= v {
		c++
	}
	for c > 0 && t.bounds[c-1] > v {
		c--
	}
	return c + 1
}

// tableFor returns the shared boundary table of a geometry, building it
// on first use. Histograms of one geometry all point at one immutable
// table, so construction cost is paid once per process.
var (
	tableMu    sync.Mutex
	tableCache = map[[2]float64]*bucketTable{}
)

func tableFor(minVal, growth float64) *bucketTable {
	tableMu.Lock()
	defer tableMu.Unlock()
	key := [2]float64{minVal, growth}
	t, ok := tableCache[key]
	if !ok {
		t = buildBucketTable(minVal, growth)
		tableCache[key] = t
	}
	return t
}

// bucketUpper returns the representative (upper bound) value for bucket i.
func (h *Histogram) bucketUpper(i int) float64 {
	if i == 0 {
		return h.minVal
	}
	return h.minVal * math.Pow(h.growth, float64(i))
}

// Record adds one observation. Non-positive values are clamped into the
// lowest bucket (latencies are always positive in practice).
func (h *Histogram) Record(v float64) {
	idx := 0
	if v > 0 {
		idx = h.bucketFor(v)
	}
	if idx >= len(h.counts) {
		grown := make([]int64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	h.total++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	if v < h.minSeen {
		h.minSeen = v
	}
}

// N returns the number of recorded observations.
func (h *Histogram) N() int64 { return h.total }

// Sum returns the exact sum of recorded observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact mean of recorded observations (tracked outside
// the buckets, so it carries no bucketing error).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest recorded observation (exact).
func (h *Histogram) Max() float64 { return h.maxSeen }

// Min returns the smallest recorded observation (exact), or +Inf if empty.
func (h *Histogram) Min() float64 { return h.minSeen }

// Quantile returns an estimate of the q-th quantile (0 < q ≤ 1) with
// relative error bounded by the bucket growth factor. It returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.minSeen
	}
	if q >= 1 {
		return h.maxSeen
	}
	target := int64(math.Ceil(q * float64(h.total)))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			v := h.bucketUpper(i)
			// Clamp to the observed extrema so tails stay exact.
			if v > h.maxSeen {
				v = h.maxSeen
			}
			if v < h.minSeen {
				v = h.minSeen
			}
			return v
		}
	}
	return h.maxSeen
}

// Percentiles is a convenience wrapper returning estimates for several
// percentile points at once (expressed 0–100).
func (h *Histogram) Percentiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = h.Quantile(p / 100)
	}
	return out
}

// String renders a short textual summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		h.total, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.maxSeen)
}

// Compatible reports whether two histograms share bucket geometry and
// can therefore be merged or mixed.
func (h *Histogram) Compatible(o *Histogram) bool {
	return h.minVal == o.minVal && h.growth == o.growth
}

// Merge folds another histogram's recordings into h. The histograms must
// share bucket geometry (same NewHistogram parameters); Merge panics
// otherwise.
func (h *Histogram) Merge(o *Histogram) {
	if !h.Compatible(o) {
		panic("stats: merging incompatible histograms")
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]int64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.maxSeen > h.maxSeen {
		h.maxSeen = o.maxSeen
	}
	if o.minSeen < h.minSeen {
		h.minSeen = o.minSeen
	}
}

// MixtureQuantile returns the q-th quantile (0 < q < 1) of the weighted
// mixture of histograms: component i contributes weight[i] total
// probability mass, distributed according to its empirical shape. All
// histograms must share bucket geometry; components with zero weight or
// no recordings are skipped. It panics on mismatched slice lengths or
// incompatible geometry, and returns 0 when no mass remains.
//
// This powers the tail-latency estimation extension: the latency
// distribution of a hybrid tiering is a mixture of the per-tier baseline
// distributions, weighted by how many requests the tiering sends to each
// tier.
func MixtureQuantile(hs []*Histogram, weights []float64, q float64) float64 {
	if len(hs) != len(weights) {
		panic("stats: mixture length mismatch")
	}
	var ref *Histogram
	totalW := 0.0
	maxBuckets := 0
	for i, h := range hs {
		if weights[i] < 0 {
			panic("stats: negative mixture weight")
		}
		if weights[i] == 0 || h == nil || h.total == 0 {
			continue
		}
		if ref == nil {
			ref = h
		} else if !ref.Compatible(h) {
			panic("stats: mixing incompatible histograms")
		}
		totalW += weights[i]
		if len(h.counts) > maxBuckets {
			maxBuckets = len(h.counts)
		}
	}
	if ref == nil || totalW == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q >= 1 {
		q = 1 - 1e-9
	}
	target := q * totalW
	cum := 0.0
	for b := 0; b < maxBuckets; b++ {
		for i, h := range hs {
			if weights[i] == 0 || h == nil || h.total == 0 || b >= len(h.counts) {
				continue
			}
			cum += weights[i] * float64(h.counts[b]) / float64(h.total)
		}
		if cum >= target {
			return ref.bucketUpper(b)
		}
	}
	// Mass exhausted by rounding: report the largest observation.
	out := 0.0
	for i, h := range hs {
		if weights[i] > 0 && h != nil && h.total > 0 && h.maxSeen > out {
			out = h.maxSeen
		}
	}
	return out
}

// Reservoir keeps a bounded uniform random sample of a stream using
// Vitter's Algorithm R with a caller-supplied random source, so exact
// percentiles can be computed over streams too large to retain.
type Reservoir struct {
	cap     int
	seen    int64
	samples []float64
	randInt func(n int64) int64
}

// NewReservoir creates a reservoir holding at most capacity samples.
// randInt must return a uniform integer in [0, n); pass the Int63n method
// of a seeded *rand.Rand for determinism.
func NewReservoir(capacity int, randInt func(n int64) int64) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	if randInt == nil {
		panic("stats: reservoir needs a random source")
	}
	return &Reservoir{cap: capacity, randInt: randInt}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, x)
		return
	}
	if j := r.randInt(r.seen); j < int64(r.cap) {
		r.samples[j] = x
	}
}

// Samples returns the current sample set (sorted copy).
func (r *Reservoir) Samples() []float64 {
	out := append([]float64(nil), r.samples...)
	sort.Float64s(out)
	return out
}

// Seen reports how many observations were offered in total.
func (r *Reservoir) Seen() int64 { return r.seen }
