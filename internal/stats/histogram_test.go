package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 1.05)
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i))
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d, want 1000", h.N())
	}
	if !almostEqual(h.Mean(), 500.5, 1e-9) {
		t.Errorf("Mean = %v, want 500.5", h.Mean())
	}
	if h.Max() != 1000 || h.Min() != 1 {
		t.Errorf("extrema %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(1e-6, 1.02)
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 50000)
	for i := range xs {
		// Lognormal-ish latencies.
		xs[i] = math.Exp(rng.NormFloat64()*0.5 + 2)
		h.Record(xs[i])
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := xs[int(q*float64(len(xs)))-1]
		got := h.Quantile(q)
		rel := math.Abs(got-exact) / exact
		if rel > 0.03 {
			t.Errorf("q=%v: got %v, exact %v, rel err %.3f", q, got, exact, rel)
		}
	}
}

func TestHistogramEdgeQuantiles(t *testing.T) {
	h := NewHistogram(1, 1.1)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	h.Record(5)
	h.Record(50)
	if got := h.Quantile(0); got != 5 {
		t.Errorf("q=0 → %v, want min 5", got)
	}
	if got := h.Quantile(1); got != 50 {
		t.Errorf("q=1 → %v, want max 50", got)
	}
}

func TestHistogramNonPositiveClamped(t *testing.T) {
	h := NewHistogram(1, 1.1)
	h.Record(0)
	h.Record(-3)
	if h.N() != 2 {
		t.Fatalf("N = %d, want 2", h.N())
	}
	// Both land in the lowest bucket; quantile must not panic.
	_ = h.Quantile(0.5)
}

func TestHistogramPercentilesHelper(t *testing.T) {
	h := NewHistogram(1, 1.01)
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	ps := h.Percentiles(50, 95, 99)
	if len(ps) != 3 {
		t.Fatalf("len = %d", len(ps))
	}
	if ps[0] > ps[1] || ps[1] > ps[2] {
		t.Errorf("percentiles not monotone: %v", ps)
	}
}

func TestHistogramConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1.1) },
		func() { NewHistogram(-1, 1.1) },
		func() { NewHistogram(1, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramStringNonEmpty(t *testing.T) {
	h := NewHistogram(1, 1.1)
	h.Record(2)
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestReservoirExactBelowCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewReservoir(100, rng.Int63n)
	for i := 0; i < 50; i++ {
		r.Add(float64(i))
	}
	s := r.Samples()
	if len(s) != 50 {
		t.Fatalf("len = %d, want 50", len(s))
	}
	for i, v := range s {
		if v != float64(i) {
			t.Fatalf("sample[%d] = %v", i, v)
		}
	}
	if r.Seen() != 50 {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirBoundedAndUniformish(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewReservoir(1000, rng.Int63n)
	const n = 100000
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	s := r.Samples()
	if len(s) != 1000 {
		t.Fatalf("len = %d, want 1000", len(s))
	}
	// Mean of a uniform sample over [0,n) should be near n/2.
	if m := Mean(s); math.Abs(m-n/2) > n/20 {
		t.Errorf("sample mean %v too far from %v", m, n/2)
	}
}

func TestReservoirPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewReservoir(0, func(int64) int64 { return 0 }) },
		func() { NewReservoir(10, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
