package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almostEqual(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Mean() != 42 || s.Min() != 42 || s.Max() != 42 {
		t.Fatal("single-sample summary wrong")
	}
	if s.Variance() != 0 {
		t.Fatalf("single-sample variance = %v, want 0", s.Variance())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	var whole, a, b Summary
	for i, x := range xs {
		whole.Add(x)
		if i < 400 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean %v vs %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged variance %v vs %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged extrema mismatch")
	}
}

func TestSummaryMergeEmptySides(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(&b) // empty other: no-op
	if a != before {
		t.Error("merge with empty changed summary")
	}
	var c Summary
	c.Merge(&a) // empty receiver adopts other
	if c.N() != 2 || c.Mean() != 2 {
		t.Error("empty receiver merge failed")
	}
}

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		q, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
		{40, 29}, // interpolated: rank 1.6 → 20 + 0.6*15
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMedianAndMean(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median = %v, want 2.5", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestBoxplotFiveNumber(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := NewBoxplot(xs)
	if b.Min != 1 || b.Max != 100 {
		t.Errorf("extrema %v/%v", b.Min, b.Max)
	}
	if b.Median != 5.5 {
		t.Errorf("median = %v, want 5.5", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", b.Outliers)
	}
	if b.WhiskerHi != 9 {
		t.Errorf("upper whisker = %v, want 9", b.WhiskerHi)
	}
	if b.N != 10 {
		t.Errorf("N = %d", b.N)
	}
}

func TestBoxplotStringNonEmpty(t *testing.T) {
	b := NewBoxplot([]float64{1, 2, 3})
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2, 0.6}, {2.5, 0.6}, {3, 0.8}, {10, 1}, {99, 1},
	}
	for _, cse := range cases {
		if got := c.P(cse.x); !almostEqual(got, cse.want, 1e-12) {
			t.Errorf("P(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	if got := c.Quantile(1.0); got != 10 {
		t.Errorf("Quantile(1.0) = %v, want 10", got)
	}
	if c.N() != 5 {
		t.Errorf("N = %d", c.N())
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	c := NewCDF(xs)
	f := func(a, b float64) bool {
		lo, hi := math.Abs(a), math.Abs(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.P(lo) <= c.P(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit := FitLine(xs, ys)
	if !almostEqual(fit.Intercept, 1, 1e-12) || !almostEqual(fit.Slope, 2, 1e-12) {
		t.Fatalf("fit = %+v, want 1 + 2x", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.At(10); !almostEqual(got, 21, 1e-12) {
		t.Errorf("At(10) = %v, want 21", got)
	}
}

func TestFitLineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 4+0.5*x+rng.NormFloat64())
	}
	fit := FitLine(xs, ys)
	if !almostEqual(fit.Slope, 0.5, 0.01) {
		t.Errorf("slope = %v, want ≈0.5", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want >0.99", fit.R2)
	}
}

func TestFitLinePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { FitLine([]float64{1}, []float64{1, 2}) },
		func() { FitLine([]float64{1}, []float64{1}) },
		func() { FitLine([]float64{2, 2}, []float64{1, 5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: for any non-empty data, Q1 ≤ median ≤ Q3 and min ≤ whiskers ≤ max.
func TestBoxplotOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw
		if len(xs) == 0 {
			xs = []float64{0}
		}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		b := NewBoxplot(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.Min <= b.WhiskerLo && b.WhiskerHi <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
