// Package stats provides the statistical machinery used throughout the
// Mnemo reproduction: streaming moments, exact and histogram-based
// percentiles, five-number (boxplot) summaries, empirical CDFs and simple
// linear regression.
//
// The paper reports throughput means over repeated runs (Fig 5), boxplots
// of estimate error per key-value store (Fig 8a), average and tail request
// latencies (Fig 8c–8e) and an empirical CDF of the key space and record
// sizes (Fig 3, Fig 4); every one of those reductions is implemented here
// against stdlib only.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary captures streaming first and second moments plus extrema.
// The zero value is an empty summary ready for use.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasSamples bool
}

// Add folds one observation into the summary (Welford's algorithm).
func (s *Summary) Add(x float64) {
	s.n++
	if !s.hasSamples {
		s.min, s.max = x, x
		s.hasSamples = true
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations added.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds another summary into s (parallel Welford merge), so summaries
// computed over shards can be combined.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Percentile returns the q-th percentile (0 ≤ q ≤ 100) of xs using linear
// interpolation between closest ranks (the same convention as numpy's
// default). It panics on an empty slice or out-of-range q. xs is not
// modified.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if q < 0 || q > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q)
}

// percentileSorted computes a percentile over already-sorted data.
func percentileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Boxplot is the five-number summary used for Fig 8a's error boxplots,
// plus the conventional 1.5·IQR whiskers and outliers.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	WhiskerLo, WhiskerHi     float64
	Outliers                 []float64
	N                        int
}

// NewBoxplot computes the five-number summary of xs. It panics on an empty
// slice. xs is not modified.
func NewBoxplot(xs []float64) Boxplot {
	if len(xs) == 0 {
		panic("stats: NewBoxplot of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	b := Boxplot{
		Min:    sorted[0],
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
		N:      len(sorted),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLo, b.WhiskerHi = b.Max, b.Min
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.WhiskerLo {
			b.WhiskerLo = x
		}
		if x > b.WhiskerHi {
			b.WhiskerHi = x
		}
	}
	return b
}

// String renders the boxplot as a compact one-line summary.
func (b Boxplot) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g (%d outliers)",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, len(b.Outliers))
}

// CDF is an empirical cumulative distribution function over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. xs is copied, not modified.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// P returns the fraction of samples ≤ x.
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample x such that P(x) ≥ q, for q in (0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// N returns the number of samples underlying the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// LinearFit holds the result of an ordinary-least-squares line fit y = a + b·x.
type LinearFit struct {
	Intercept, Slope float64
	R2               float64
}

// FitLine computes the OLS line through (xs, ys). It panics if the slices
// differ in length or have fewer than two points.
func FitLine(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLine length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: FitLine needs at least two points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: FitLine with constant x")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := range xs {
			r := ys[i] - (a + b*xs[i])
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Intercept: a, Slope: b, R2: r2}
}

// At evaluates the fitted line at x.
func (f LinearFit) At(x float64) float64 { return f.Intercept + f.Slope*x }
