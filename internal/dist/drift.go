// Drift distributions: non-stationary request generators whose hot set
// moves during the trace. Static placement freezes one ordering for the
// whole run, so any workload whose popular keys change mid-trace is a
// workload static tiering provably loses on — these two generators are
// the adversarial inputs the adaptive (epoch-based) policies are
// measured against.
package dist

import (
	"fmt"
	"math/rand"
)

// HotSetDrift sends hotOpnFraction of operations to a contiguous hot
// window of hotSetFraction·keys keys, like Hotspot — but the window's
// start slides linearly across the key space as the trace progresses,
// wrapping at the end. A static policy can only pin the time-averaged
// hot set (which is nearly uniform once the window has swept the whole
// space); an adaptive policy can chase the window.
type HotSetDrift struct {
	keys     int
	requests int
	issued   int
	hotKeys  int
	hotOpn   float64
}

// NewHotSetDrift returns a drifting-hotspot chooser over [0, keys) for a
// trace of the given total length. hotSetFraction of the key space is hot
// at any instant and receives hotOpnFraction of the operations; the hot
// window completes exactly one full sweep of the key space over the trace.
func NewHotSetDrift(keys, totalRequests int, hotSetFraction, hotOpnFraction float64) *HotSetDrift {
	mustPositiveKeys(keys)
	if totalRequests <= 0 {
		panic("dist: hot-set drift needs a positive request count")
	}
	if hotSetFraction <= 0 || hotSetFraction > 1 {
		panic(fmt.Sprintf("dist: hot-set drift set fraction %v outside (0,1]", hotSetFraction))
	}
	if hotOpnFraction < 0 || hotOpnFraction > 1 {
		panic(fmt.Sprintf("dist: hot-set drift op fraction %v outside [0,1]", hotOpnFraction))
	}
	hot := int(float64(keys) * hotSetFraction)
	if hot < 1 {
		hot = 1
	}
	return &HotSetDrift{keys: keys, requests: totalRequests, hotKeys: hot, hotOpn: hotOpnFraction}
}

// Next implements KeyChooser.
func (d *HotSetDrift) Next(r *rand.Rand) int {
	start := d.issued * d.keys / d.requests
	if start >= d.keys {
		start = d.keys - 1
	}
	d.issued++
	if r.Float64() < d.hotOpn {
		return (start + r.Intn(d.hotKeys)) % d.keys
	}
	return r.Intn(d.keys)
}

// Keys implements KeyChooser.
func (d *HotSetDrift) Keys() int { return d.keys }

// Name implements KeyChooser.
func (d *HotSetDrift) Name() string { return "hot_set_drift" }

// HotKeys reports the size of the instantaneous hot window.
func (d *HotSetDrift) HotKeys() int { return d.hotKeys }

// Reset rewinds the window so the chooser can generate another trace.
func (d *HotSetDrift) Reset() { d.issued = 0 }

// PhaseChange divides the trace into P equal phases, each a scrambled
// zipfian whose scatter hash is salted with the phase index — at every
// phase boundary the popular keys move to a completely unrelated part of
// the key space. Within a phase the workload is as skewed (and as
// tierable) as Timeline; across phases there is no single good static
// placement.
type PhaseChange struct {
	keys     int
	requests int
	issued   int
	phases   int
	z        *Zipfian
}

// phaseSalt spreads consecutive phase indices across the 64-bit space
// (golden-ratio multiplier) before they are XORed into the scatter hash.
const phaseSalt = 0x9E3779B97F4A7C15

// NewPhaseChange returns a phase-change chooser over [0, keys) for a
// trace of the given total length split into phases ≥ 2 phases.
func NewPhaseChange(keys, totalRequests, phases int) *PhaseChange {
	mustPositiveKeys(keys)
	if totalRequests <= 0 {
		panic("dist: phase change needs a positive request count")
	}
	if phases < 2 {
		panic(fmt.Sprintf("dist: phase change needs at least 2 phases, got %d", phases))
	}
	return &PhaseChange{keys: keys, requests: totalRequests, phases: phases, z: NewZipfian(keys, ZipfianTheta)}
}

// Next implements KeyChooser.
func (p *PhaseChange) Next(r *rand.Rand) int {
	phase := p.issued * p.phases / p.requests
	if phase >= p.phases {
		phase = p.phases - 1
	}
	p.issued++
	rank := p.z.Next(r)
	return int(fnv1a64(uint64(rank)^(uint64(phase)*phaseSalt)) % uint64(p.keys))
}

// Keys implements KeyChooser.
func (p *PhaseChange) Keys() int { return p.keys }

// Name implements KeyChooser.
func (p *PhaseChange) Name() string { return "phase_change" }

// Phases reports the configured phase count.
func (p *PhaseChange) Phases() int { return p.phases }

// Reset rewinds the phase clock so the chooser can generate another trace.
func (p *PhaseChange) Reset() { p.issued = 0 }
