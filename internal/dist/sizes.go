package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// SizeDist produces record sizes in bytes. The paper infers the size
// distributions of common social-media payloads from public "cheat
// sheets" (Fig 4): photo thumbnails around 100 KB, text posts around
// 10 KB and photo captions around 1 KB.
type SizeDist interface {
	// Next returns the size, in bytes, of the next record.
	Next(r *rand.Rand) int
	// Mean returns the expected record size in bytes.
	Mean() float64
	// Name identifies the distribution for reports.
	Name() string
}

// Fixed always returns the same record size.
type Fixed struct {
	bytes int
	name  string
}

// NewFixed returns a constant size distribution.
func NewFixed(bytes int, name string) *Fixed {
	if bytes <= 0 {
		panic(fmt.Sprintf("dist: fixed size %d must be positive", bytes))
	}
	return &Fixed{bytes: bytes, name: name}
}

// Next implements SizeDist.
func (f *Fixed) Next(*rand.Rand) int { return f.bytes }

// Mean implements SizeDist.
func (f *Fixed) Mean() float64 { return float64(f.bytes) }

// Name implements SizeDist.
func (f *Fixed) Name() string { return f.name }

// LogNormal draws sizes from a lognormal distribution clamped to
// [min, max]. Social-media payload sizes are heavy-tailed multiplicative
// quantities, which lognormals capture well; Fig 4's CDFs are reproduced
// by the presets below.
type LogNormal struct {
	mu, sigma float64
	min, max  int
	name      string
}

// NewLogNormal returns a lognormal size distribution whose *median* is
// medianBytes and whose log-space standard deviation is sigma, clamped to
// [minBytes, maxBytes].
func NewLogNormal(medianBytes int, sigma float64, minBytes, maxBytes int, name string) *LogNormal {
	if medianBytes <= 0 || minBytes <= 0 || maxBytes < minBytes {
		panic("dist: invalid lognormal bounds")
	}
	if sigma <= 0 {
		panic("dist: lognormal sigma must be positive")
	}
	return &LogNormal{
		mu:    math.Log(float64(medianBytes)),
		sigma: sigma,
		min:   minBytes,
		max:   maxBytes,
		name:  name,
	}
}

// Next implements SizeDist.
func (l *LogNormal) Next(r *rand.Rand) int {
	v := int(math.Exp(l.mu + l.sigma*r.NormFloat64()))
	if v < l.min {
		v = l.min
	}
	if v > l.max {
		v = l.max
	}
	return v
}

// Mean implements SizeDist; it reports the unclamped lognormal mean,
// exp(µ + σ²/2), which is accurate when the clamp bounds are generous.
func (l *LogNormal) Mean() float64 { return math.Exp(l.mu + l.sigma*l.sigma/2) }

// Name implements SizeDist.
func (l *LogNormal) Name() string { return l.name }

// Mixture draws from one of several component distributions with the
// given weights; the Trending Preview workload mixes thumbnails, text
// posts and captions in one request stream.
type Mixture struct {
	comps   []SizeDist
	cum     []float64
	name    string
	meanVal float64
}

// NewMixture builds a weighted mixture. Weights need not sum to one; they
// are normalized. Component and weight counts must match and be non-empty.
func NewMixture(name string, comps []SizeDist, weights []float64) *Mixture {
	if len(comps) == 0 || len(comps) != len(weights) {
		panic("dist: mixture needs matching non-empty components and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dist: negative mixture weight")
		}
		total += w
	}
	if total <= 0 {
		panic("dist: mixture weights sum to zero")
	}
	m := &Mixture{comps: comps, name: name}
	cum := 0.0
	for i, w := range weights {
		cum += w / total
		m.cum = append(m.cum, cum)
		m.meanVal += comps[i].Mean() * w / total
	}
	m.cum[len(m.cum)-1] = 1 // guard against rounding
	return m
}

// Next implements SizeDist.
func (m *Mixture) Next(r *rand.Rand) int {
	u := r.Float64()
	for i, c := range m.cum {
		if u <= c {
			return m.comps[i].Next(r)
		}
	}
	return m.comps[len(m.comps)-1].Next(r)
}

// Mean implements SizeDist.
func (m *Mixture) Mean() float64 { return m.meanVal }

// Name implements SizeDist.
func (m *Mixture) Name() string { return m.name }

// Size presets matching Fig 4 / Table III. Medians follow the paper's
// approximate sizes; sigmas are chosen so the CDFs span the ranges of the
// public social-media cheat sheets the paper cites.
const (
	KB = 1 << 10
	MB = 1 << 20
)

// Thumbnail returns the ≈100 KB photo-thumbnail size distribution.
func Thumbnail() SizeDist {
	return NewLogNormal(100*KB, 0.35, 20*KB, 400*KB, "thumbnail")
}

// TextPost returns the ≈10 KB text-post size distribution.
func TextPost() SizeDist {
	return NewLogNormal(10*KB, 0.45, 1*KB, 60*KB, "text_post")
}

// PhotoCaption returns the ≈1 KB photo-caption size distribution.
func PhotoCaption() SizeDist {
	return NewLogNormal(1*KB, 0.5, 128, 8*KB, "photo_caption")
}

// TrendingPreviewMix returns the Trending Preview mixture: thumbnail,
// caption and news summary previewed together (equal thirds).
func TrendingPreviewMix() SizeDist {
	return NewMixture("trending_preview_mix",
		[]SizeDist{Thumbnail(), TextPost(), PhotoCaption()},
		[]float64{1, 1, 1})
}

// SizeCDF samples n record sizes from d and returns them for CDF plotting
// (Fig 4).
func SizeCDF(d SizeDist, n int, r *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(d.Next(r))
	}
	return out
}
