package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUniformRangeAndSpread(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	u := NewUniform(100)
	counts := Counts(u, 100000, r)
	for k, c := range counts {
		if c == 0 {
			t.Fatalf("key %d never drawn", k)
		}
		if c < 700 || c > 1300 {
			t.Errorf("key %d count %d too far from 1000", k, c)
		}
	}
	if u.Name() != "uniform" || u.Keys() != 100 {
		t.Error("metadata wrong")
	}
}

func TestZipfianSkewAndBounds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	z := NewZipfian(10000, ZipfianTheta)
	counts := Counts(z, 200000, r)
	// Key 0 must dominate.
	maxIdx := 0
	for i, c := range counts {
		if c > counts[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx != 0 {
		t.Errorf("most popular key = %d, want 0", maxIdx)
	}
	// Top 20% of key IDs should capture well over half the accesses.
	top := 0
	total := 0
	for i, c := range counts {
		total += c
		if i < 2000 {
			top += c
		}
	}
	if frac := float64(top) / float64(total); frac < 0.7 {
		t.Errorf("top-20%% share = %.3f, want > 0.7 for θ=0.99", frac)
	}
	if z.Theta() != ZipfianTheta {
		t.Error("Theta accessor wrong")
	}
}

func TestZipfianInRangeProperty(t *testing.T) {
	z := NewZipfian(1000, 0.9)
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		k := z.Next(r)
		return k >= 0 && k < 1000
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfianPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipfian(0, 0.99) },
		func() { NewZipfian(10, 0) },
		func() { NewZipfian(10, 1) },
		func() { NewZipfian(10, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestScrambledZipfianScatters(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := NewScrambledZipfian(10000, ZipfianTheta)
	counts := Counts(s, 200000, r)
	// The hottest keys must NOT be clustered at low IDs: find top-10 keys
	// and check their spread across the ID space.
	type kc struct{ k, c int }
	var all []kc
	for k, c := range counts {
		all = append(all, kc{k, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	var ids []int
	for _, e := range all[:10] {
		ids = append(ids, e.k)
	}
	sort.Ints(ids)
	if ids[9]-ids[0] < 1000 {
		t.Errorf("top-10 hot keys clustered within %d IDs; want scattered", ids[9]-ids[0])
	}
	if s.Name() != "scrambled_zipfian" || s.Keys() != 10000 {
		t.Error("metadata wrong")
	}
}

func TestScrambledZipfianSameSkewAsZipfian(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := NewScrambledZipfian(10000, ZipfianTheta)
	counts := Counts(s, 200000, r)
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 0
	total := 0
	for i, c := range counts {
		total += c
		if i < 2000 {
			top += c
		}
	}
	if frac := float64(top) / float64(total); frac < 0.7 {
		t.Errorf("sorted top-20%% share = %.3f, want > 0.7", frac)
	}
}

func TestHotspotShares(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	h := NewHotspot(10000, 0.2, 0.95)
	if h.HotKeys() != 2000 {
		t.Fatalf("hot keys = %d, want 2000", h.HotKeys())
	}
	counts := Counts(h, 100000, r)
	hot := 0
	total := 0
	for i, c := range counts {
		total += c
		if i < 2000 {
			hot += c
		}
	}
	frac := float64(hot) / float64(total)
	if math.Abs(frac-0.95) > 0.01 {
		t.Errorf("hot share = %.3f, want ≈0.95", frac)
	}
}

func TestHotspotFullHotSet(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	h := NewHotspot(100, 1.0, 0.5)
	for i := 0; i < 1000; i++ {
		k := h.Next(r)
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestHotspotPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHotspot(100, 0, 0.5) },
		func() { NewHotspot(100, 1.5, 0.5) },
		func() { NewHotspot(100, 0.2, -0.1) },
		func() { NewHotspot(100, 0.2, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLatestHeadAdvances(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	l := NewLatest(10000, 100000)
	// Early draws should be near the start, late draws near the end.
	var early, late []int
	for i := 0; i < 100000; i++ {
		k := l.Next(r)
		if i < 5000 {
			early = append(early, k)
		}
		if i >= 95000 {
			late = append(late, k)
		}
	}
	meanOf := func(xs []int) float64 {
		s := 0
		for _, x := range xs {
			s += x
		}
		return float64(s) / float64(len(xs))
	}
	if me, ml := meanOf(early), meanOf(late); ml-me < 5000 {
		t.Errorf("head did not advance: early mean %.0f, late mean %.0f", me, ml)
	}
}

func TestLatestTotalCountsRoughlyUniform(t *testing.T) {
	// The property Fig 9 relies on: over the whole trace, latest spreads
	// accesses across the key space, so no small static hot set exists.
	r := rand.New(rand.NewSource(9))
	l := NewLatest(1000, 100000)
	counts := Counts(l, 100000, r)
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	top := 0
	total := 0
	for i, c := range sorted {
		total += c
		if i < 200 { // top 20% of keys by count
			top += c
		}
	}
	if frac := float64(top) / float64(total); frac > 0.55 {
		t.Errorf("latest top-20%% share = %.3f; want < 0.55 (no strong static hot set)", frac)
	}
}

func TestLatestReset(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	l := NewLatest(100, 1000)
	for i := 0; i < 500; i++ {
		l.Next(r)
	}
	l.Reset()
	// After reset the head is back near zero.
	sum := 0
	for i := 0; i < 100; i++ {
		sum += l.Next(r)
	}
	if mean := float64(sum) / 100; mean > 50 {
		t.Errorf("post-reset mean key %.1f, want near 0", mean)
	}
}

func TestLatestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLatest(0, 10) },
		func() { NewLatest(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCDFByKeyID(t *testing.T) {
	counts := []int{5, 0, 3, 2}
	cdf := CDFByKeyID(counts)
	want := []float64{0.5, 0.5, 0.8, 1.0}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-12 {
			t.Errorf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestCDFByKeyIDEmptyAndZero(t *testing.T) {
	if got := CDFByKeyID(nil); len(got) != 0 {
		t.Error("nil counts should give empty cdf")
	}
	got := CDFByKeyID([]int{0, 0})
	if got[0] != 0 || got[1] != 0 {
		t.Error("all-zero counts should give zero cdf")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		cdf := CDFByKeyID(counts)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	gen := func() []int {
		r := rand.New(rand.NewSource(99))
		z := NewScrambledZipfian(500, ZipfianTheta)
		return Counts(z, 10000, r)
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestFNVScatterIsStable(t *testing.T) {
	// The scatter function must be a pure function of the rank so the same
	// rank always maps to the same key (keys keep their identity).
	if fnv1a64(42) != fnv1a64(42) {
		t.Fatal("fnv1a64 not deterministic")
	}
	if fnv1a64(1) == fnv1a64(2) {
		t.Fatal("suspicious collision between adjacent ranks")
	}
}
