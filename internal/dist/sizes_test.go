package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestFixed(t *testing.T) {
	f := NewFixed(1024, "1k")
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if f.Next(r) != 1024 {
			t.Fatal("Fixed returned a different size")
		}
	}
	if f.Mean() != 1024 || f.Name() != "1k" {
		t.Error("metadata wrong")
	}
}

func TestFixedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFixed(0, "zero")
}

func TestLogNormalMedianAndClamp(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	l := NewLogNormal(100*KB, 0.35, 20*KB, 400*KB, "thumb")
	var xs []float64
	for i := 0; i < 20000; i++ {
		v := l.Next(r)
		if v < 20*KB || v > 400*KB {
			t.Fatalf("size %d outside clamp", v)
		}
		xs = append(xs, float64(v))
	}
	// Median should be near 100 KB.
	med := median(xs)
	if math.Abs(med-100*KB)/float64(100*KB) > 0.05 {
		t.Errorf("median = %.0f, want ≈ %d", med, 100*KB)
	}
	if l.Mean() <= float64(100*KB) {
		t.Errorf("lognormal mean %.0f should exceed median", l.Mean())
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort is fine for tests
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestLogNormalPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLogNormal(0, 0.5, 1, 10, "x") },
		func() { NewLogNormal(10, 0, 1, 10, "x") },
		func() { NewLogNormal(10, 0.5, 0, 10, "x") },
		func() { NewLogNormal(10, 0.5, 20, 10, "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMixtureWeights(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := NewMixture("mix",
		[]SizeDist{NewFixed(100, "a"), NewFixed(1000, "b")},
		[]float64{3, 1})
	nA, nB := 0, 0
	for i := 0; i < 40000; i++ {
		switch m.Next(r) {
		case 100:
			nA++
		case 1000:
			nB++
		default:
			t.Fatal("unexpected size from mixture")
		}
	}
	frac := float64(nA) / float64(nA+nB)
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("component A fraction = %.3f, want ≈0.75", frac)
	}
	if math.Abs(m.Mean()-325) > 1e-9 {
		t.Errorf("mixture mean = %v, want 325", m.Mean())
	}
}

func TestMixturePanics(t *testing.T) {
	a := NewFixed(1, "a")
	for _, fn := range []func(){
		func() { NewMixture("m", nil, nil) },
		func() { NewMixture("m", []SizeDist{a}, []float64{1, 2}) },
		func() { NewMixture("m", []SizeDist{a}, []float64{-1}) },
		func() { NewMixture("m", []SizeDist{a}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPresetsOrdering(t *testing.T) {
	// Fig 4: thumbnail ≫ text post ≫ caption in size.
	th, tp, pc := Thumbnail(), TextPost(), PhotoCaption()
	if !(th.Mean() > tp.Mean() && tp.Mean() > pc.Mean()) {
		t.Fatalf("preset means not ordered: %v %v %v", th.Mean(), tp.Mean(), pc.Mean())
	}
	r := rand.New(rand.NewSource(4))
	if v := th.Next(r); v < 20*KB {
		t.Errorf("thumbnail draw %d below clamp", v)
	}
}

func TestTrendingPreviewMixSpansDecades(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := TrendingPreviewMix()
	small, large := false, false
	for i := 0; i < 10000; i++ {
		v := m.Next(r)
		if v < 4*KB {
			small = true
		}
		if v > 50*KB {
			large = true
		}
	}
	if !small || !large {
		t.Fatal("preview mix should span captions through thumbnails")
	}
}

func TestSizeCDFLength(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	xs := SizeCDF(PhotoCaption(), 100, r)
	if len(xs) != 100 {
		t.Fatalf("len = %d", len(xs))
	}
	for _, x := range xs {
		if x <= 0 {
			t.Fatal("non-positive size sample")
		}
	}
}
