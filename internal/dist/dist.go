// Package dist implements the request-distribution generators of the
// Yahoo! Cloud Serving Benchmark that the paper's custom workloads are
// built from (Table III, Fig 3): uniform, zipfian, scrambled zipfian,
// hotspot and latest, plus the record-size distributions of Fig 4.
//
// The zipfian generator follows the incremental algorithm of Gray et al.
// ("Quickly generating billion-record synthetic databases") exactly as
// YCSB implements it, with the default skew θ = 0.99. The scrambled
// variant hashes the zipfian rank across the key space with FNV-1a so the
// hot keys are scattered rather than clustered at the low IDs — the
// distinction Fig 3 draws between "zipfian" and "scrambled zipfian".
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// KeyChooser selects key IDs in [0, Keys) according to a request
// distribution. Implementations may be stateful (Latest advances an
// internal head); none are safe for concurrent use. All randomness flows
// through the caller-supplied *rand.Rand so traces are reproducible.
type KeyChooser interface {
	// Next returns the key ID for the next request.
	Next(r *rand.Rand) int
	// Keys reports the size of the key space.
	Keys() int
	// Name identifies the distribution for reports and figures.
	Name() string
}

// ZipfianTheta is the default skew constant used by YCSB and by the paper.
const ZipfianTheta = 0.99

// Uniform selects keys uniformly at random.
type Uniform struct {
	keys int
}

// NewUniform returns a uniform chooser over [0, keys).
func NewUniform(keys int) *Uniform {
	mustPositiveKeys(keys)
	return &Uniform{keys: keys}
}

// Next implements KeyChooser.
func (u *Uniform) Next(r *rand.Rand) int { return r.Intn(u.keys) }

// Keys implements KeyChooser.
func (u *Uniform) Keys() int { return u.keys }

// Name implements KeyChooser.
func (u *Uniform) Name() string { return "uniform" }

// Zipfian selects keys with a zipfian popularity skew: key 0 is the most
// popular, key 1 the second most, and so on. This is the "zipfian"
// distribution of Fig 3 where the hot keys sit at the beginning of the key
// range.
type Zipfian struct {
	keys                    int
	theta                   float64
	zetan, alpha, eta, half float64
}

// NewZipfian returns a zipfian chooser over [0, keys) with skew theta.
// Use ZipfianTheta for the YCSB default.
func NewZipfian(keys int, theta float64) *Zipfian {
	mustPositiveKeys(keys)
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("dist: zipfian theta %v outside (0,1)", theta))
	}
	z := &Zipfian{keys: keys, theta: theta}
	z.zetan = zeta(keys, theta)
	zeta2 := zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(keys), 1-theta)) / (1 - zeta2/z.zetan)
	z.half = 1 + math.Pow(0.5, theta)
	return z
}

// zeta computes the generalized harmonic number Σ_{i=1..n} 1/i^theta.
func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements KeyChooser using Gray et al.'s inverse-CDF approximation.
func (z *Zipfian) Next(r *rand.Rand) int {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.half {
		return 1
	}
	k := int(float64(z.keys) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.keys {
		k = z.keys - 1
	}
	return k
}

// Keys implements KeyChooser.
func (z *Zipfian) Keys() int { return z.keys }

// Name implements KeyChooser.
func (z *Zipfian) Name() string { return "zipfian" }

// Theta reports the configured skew.
func (z *Zipfian) Theta() float64 { return z.theta }

// ScrambledZipfian draws a zipfian rank and hashes it across the key
// space, so the popular keys are scattered rather than contiguous —
// Fig 3's "scrambled zipfian", used by the Timeline and Edit Thumbnail
// workloads.
type ScrambledZipfian struct {
	z *Zipfian
}

// NewScrambledZipfian returns a scrambled zipfian chooser over [0, keys).
func NewScrambledZipfian(keys int, theta float64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(keys, theta)}
}

// fnv1a64 is the 64-bit FNV-1a hash of an integer's eight bytes; it is the
// scatter function YCSB uses for its scrambled generator.
func fnv1a64(v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// Next implements KeyChooser.
func (s *ScrambledZipfian) Next(r *rand.Rand) int {
	rank := s.z.Next(r)
	return int(fnv1a64(uint64(rank)) % uint64(s.z.keys))
}

// Keys implements KeyChooser.
func (s *ScrambledZipfian) Keys() int { return s.z.keys }

// Name implements KeyChooser.
func (s *ScrambledZipfian) Name() string { return "scrambled_zipfian" }

// Hotspot sends a configurable fraction of operations to a contiguous hot
// set of keys and spreads the remainder uniformly over the cold set — the
// distribution of the Trending workloads ("a workload heavily accesses 20%
// of the keys").
type Hotspot struct {
	keys    int
	hotKeys int
	hotOpn  float64
}

// NewHotspot returns a hotspot chooser: hotSetFraction of the key space
// receives hotOpnFraction of the operations.
func NewHotspot(keys int, hotSetFraction, hotOpnFraction float64) *Hotspot {
	mustPositiveKeys(keys)
	if hotSetFraction <= 0 || hotSetFraction > 1 {
		panic(fmt.Sprintf("dist: hotspot set fraction %v outside (0,1]", hotSetFraction))
	}
	if hotOpnFraction < 0 || hotOpnFraction > 1 {
		panic(fmt.Sprintf("dist: hotspot op fraction %v outside [0,1]", hotOpnFraction))
	}
	hot := int(float64(keys) * hotSetFraction)
	if hot < 1 {
		hot = 1
	}
	return &Hotspot{keys: keys, hotKeys: hot, hotOpn: hotOpnFraction}
}

// Next implements KeyChooser.
func (h *Hotspot) Next(r *rand.Rand) int {
	if r.Float64() < h.hotOpn {
		return r.Intn(h.hotKeys)
	}
	if h.hotKeys == h.keys {
		return r.Intn(h.keys)
	}
	return h.hotKeys + r.Intn(h.keys-h.hotKeys)
}

// Keys implements KeyChooser.
func (h *Hotspot) Keys() int { return h.keys }

// Name implements KeyChooser.
func (h *Hotspot) Name() string { return "hotspot" }

// HotKeys reports the size of the hot set.
func (h *Hotspot) HotKeys() int { return h.hotKeys }

// Latest favors the most recently produced content. The paper's News Feed
// workload reads a feed whose head keeps advancing: fresh items are hot
// for a short while and then decay. We model the static 10 000-key space
// as a timeline the head sweeps across once during the trace; each request
// picks head − z where z is a small zipfian offset. Over the whole run
// every key gets roughly equal total accesses, which is exactly why Fig 9
// finds News Feed almost impossible to tier statically.
type Latest struct {
	keys     int
	requests int
	issued   int
	offset   *Zipfian
}

// NewLatest returns a latest chooser over [0, keys) for a trace of the
// given total length (the head advances in proportion to issued requests).
func NewLatest(keys, totalRequests int) *Latest {
	mustPositiveKeys(keys)
	if totalRequests <= 0 {
		panic("dist: latest needs a positive request count")
	}
	return &Latest{keys: keys, requests: totalRequests, offset: NewZipfian(keys, ZipfianTheta)}
}

// Next implements KeyChooser.
func (l *Latest) Next(r *rand.Rand) int {
	head := l.issued * l.keys / l.requests
	if head >= l.keys {
		head = l.keys - 1
	}
	l.issued++
	off := l.offset.Next(r)
	k := head - off
	if k < 0 {
		k += l.keys // wrap: "older than the epoch" folds to the tail
	}
	return k
}

// Keys implements KeyChooser.
func (l *Latest) Keys() int { return l.keys }

// Name implements KeyChooser.
func (l *Latest) Name() string { return "latest" }

// Reset rewinds the head so the chooser can generate another trace.
func (l *Latest) Reset() { l.issued = 0 }

func mustPositiveKeys(keys int) {
	if keys <= 0 {
		panic(fmt.Sprintf("dist: key space size %d must be positive", keys))
	}
}

// Counts generates n draws from c using the seeded rng and returns the
// per-key access counts — the raw material of Fig 3's key-space CDF.
func Counts(c KeyChooser, n int, r *rand.Rand) []int {
	counts := make([]int, c.Keys())
	for i := 0; i < n; i++ {
		counts[c.Next(r)]++
	}
	return counts
}

// CDFByKeyID turns per-key counts into Fig 3's curve: the cumulative
// probability that a request targets a key with ID ≤ i.
func CDFByKeyID(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	cum := 0
	for i, c := range counts {
		cum += c
		if total > 0 {
			out[i] = float64(cum) / float64(total)
		}
	}
	return out
}
