package dist

import (
	"math/rand"
	"testing"
)

// windowShare draws n keys and reports the fraction that landed in the
// instantaneous hot window [start, start+hot) mod keys, where start is
// recomputed per draw the way Next does.
func TestHotSetDriftWindowSlidesAndConcentrates(t *testing.T) {
	const keys, requests = 1000, 50000
	d := NewHotSetDrift(keys, requests, 0.1, 0.9)
	if d.Name() != "hot_set_drift" || d.Keys() != keys || d.HotKeys() != 100 {
		t.Fatalf("metadata wrong: %q keys %d hot %d", d.Name(), d.Keys(), d.HotKeys())
	}
	r := rand.New(rand.NewSource(7))
	inWindow := 0
	var firstQuarter, lastQuarter [2]int // [hits below keys/2, draws] per trace quarter
	for i := 0; i < requests; i++ {
		start := i * keys / requests
		k := d.Next(r)
		if k < 0 || k >= keys {
			t.Fatalf("draw %d out of range: %d", i, k)
		}
		lo, hi := start, start+d.HotKeys()
		if (k >= lo && k < hi) || k+keys < hi {
			inWindow++
		}
		if i < requests/4 {
			firstQuarter[1]++
			if k < keys/2 {
				firstQuarter[0]++
			}
		} else if i >= requests*3/4 {
			lastQuarter[1]++
			if k < keys/2 {
				lastQuarter[0]++
			}
		}
	}
	// ~90% hot + uniform spillover into the window ⇒ well above 0.85.
	if frac := float64(inWindow) / requests; frac < 0.85 {
		t.Errorf("window share %.3f, want ≥ 0.85", frac)
	}
	// The window starts at the bottom of the key space and ends at the
	// top: the trace's first quarter hits low keys, the last high keys.
	early := float64(firstQuarter[0]) / float64(firstQuarter[1])
	late := float64(lastQuarter[0]) / float64(lastQuarter[1])
	if early < 0.8 || late > 0.3 {
		t.Errorf("window did not sweep: low-half share %.3f early, %.3f late", early, late)
	}
}

func TestHotSetDriftResetRepeats(t *testing.T) {
	d := NewHotSetDrift(500, 2000, 0.2, 0.9)
	r1 := rand.New(rand.NewSource(3))
	first := make([]int, 2000)
	for i := range first {
		first[i] = d.Next(r1)
	}
	d.Reset()
	r2 := rand.New(rand.NewSource(3))
	for i := range first {
		if got := d.Next(r2); got != first[i] {
			t.Fatalf("draw %d after Reset: %d, want %d", i, got, first[i])
		}
	}
}

func TestHotSetDriftPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero requests":    func() { NewHotSetDrift(10, 0, 0.2, 0.9) },
		"zero hot set":     func() { NewHotSetDrift(10, 100, 0, 0.9) },
		"hot set above 1":  func() { NewHotSetDrift(10, 100, 1.5, 0.9) },
		"negative hot opn": func() { NewHotSetDrift(10, 100, 0.2, -0.1) },
		"hot opn above 1":  func() { NewHotSetDrift(10, 100, 0.2, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPhaseChangeScramblesBetweenPhases(t *testing.T) {
	const keys, requests, phases = 2000, 40000, 2
	p := NewPhaseChange(keys, requests, phases)
	if p.Name() != "phase_change" || p.Keys() != keys || p.Phases() != phases {
		t.Fatalf("metadata wrong: %q keys %d phases %d", p.Name(), p.Keys(), p.Phases())
	}
	r := rand.New(rand.NewSource(11))
	counts := [2][]int{make([]int, keys), make([]int, keys)}
	for i := 0; i < requests; i++ {
		phase := i * phases / requests
		k := p.Next(r)
		if k < 0 || k >= keys {
			t.Fatalf("draw %d out of range: %d", i, k)
		}
		counts[phase][k]++
	}
	// Each phase is skewed: its top-64 keys carry a large share.
	topShare := func(c []int) float64 {
		top := append([]int(nil), c...)
		total := 0
		for _, n := range c {
			total += n
		}
		// partial selection: find 64 largest by simple repeated max on a
		// copy (keys is small).
		share := 0
		for sel := 0; sel < 64; sel++ {
			maxI := 0
			for i, n := range top {
				if n > top[maxI] {
					maxI = i
				}
			}
			share += top[maxI]
			top[maxI] = -1
		}
		return float64(share) / float64(total)
	}
	hot := func(c []int) map[int]bool {
		m := map[int]bool{}
		top := append([]int(nil), c...)
		for sel := 0; sel < 64; sel++ {
			maxI := 0
			for i, n := range top {
				if n > top[maxI] {
					maxI = i
				}
			}
			m[maxI] = true
			top[maxI] = -1
		}
		return m
	}
	for ph := 0; ph < phases; ph++ {
		if s := topShare(counts[ph]); s < 0.3 {
			t.Errorf("phase %d top-64 share %.3f, want ≥ 0.3 (zipfian within a phase)", ph, s)
		}
	}
	// Across the boundary the hot sets are unrelated: small overlap.
	h0, h1 := hot(counts[0]), hot(counts[1])
	overlap := 0
	for k := range h0 {
		if h1[k] {
			overlap++
		}
	}
	if overlap > 16 {
		t.Errorf("phase hot sets share %d/64 keys — boundary did not re-scramble", overlap)
	}
}

func TestPhaseChangeResetRepeats(t *testing.T) {
	p := NewPhaseChange(300, 1200, 3)
	r1 := rand.New(rand.NewSource(5))
	first := make([]int, 1200)
	for i := range first {
		first[i] = p.Next(r1)
	}
	p.Reset()
	r2 := rand.New(rand.NewSource(5))
	for i := range first {
		if got := p.Next(r2); got != first[i] {
			t.Fatalf("draw %d after Reset: %d, want %d", i, got, first[i])
		}
	}
}

func TestPhaseChangePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero requests": func() { NewPhaseChange(10, 0, 2) },
		"one phase":     func() { NewPhaseChange(10, 100, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
