// Package simclock provides a deterministic virtual clock for the hybrid
// memory simulator.
//
// All performance numbers in this repository are expressed in simulated
// time: the key-value store engines compute a service time for every
// request (see internal/server) and advance a Clock by that amount. Using
// virtual rather than wall-clock time makes every experiment deterministic
// for a given seed and independent of the hardware the reproduction runs
// on, while preserving the additive service-time structure Mnemo's
// analytical model relies on.
package simclock

import (
	"fmt"
	"time"
)

// Duration is a span of simulated time with nanosecond resolution.
//
// It is kept distinct from time.Duration so that simulated and wall-clock
// quantities cannot be mixed accidentally; convert explicitly with
// FromReal/Real.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// FromReal converts a wall-clock duration to a simulated duration.
func FromReal(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Real converts a simulated duration to a wall-clock duration for display.
func (d Duration) Real() time.Duration { return time.Duration(d) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Nanoseconds reports the duration as an integer nanosecond count.
func (d Duration) Nanoseconds() int64 { return int64(d) }

// Microseconds reports the duration as a floating-point microsecond count.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration using time.Duration notation.
func (d Duration) String() string { return time.Duration(d).String() }

// FromSeconds builds a Duration from a floating-point number of seconds.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// FromNanos builds a Duration from a floating-point nanosecond count,
// rounding to the nearest nanosecond.
func FromNanos(ns float64) Duration {
	if ns < 0 {
		return Duration(ns - 0.5)
	}
	return Duration(ns + 0.5)
}

// Clock is a monotonically advancing virtual clock.
//
// The zero value is a clock at time zero, ready to use. Clock is not safe
// for concurrent use; the simulator is single-threaded by design (the
// paper's client issues requests sequentially as well).
type Clock struct {
	now Duration
}

// Now returns the current simulated time since the clock's epoch.
func (c *Clock) Now() Duration { return c.now }

// Advance moves the clock forward by d and returns the new time.
// Advancing by a negative duration panics: simulated time is monotonic.
func (c *Clock) Advance(d Duration) Duration {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	c.now += d
	return c.now
}

// Reset rewinds the clock to time zero. Useful between experiment runs
// that reuse a deployment.
func (c *Clock) Reset() { c.now = 0 }

// Since reports the time elapsed between a past instant t and now.
func (c *Clock) Since(t Duration) Duration { return c.now - t }
