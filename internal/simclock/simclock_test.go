package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestZeroClock(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestAdvance(t *testing.T) {
	var c Clock
	if got := c.Advance(5 * Microsecond); got != 5*Microsecond {
		t.Fatalf("Advance returned %v, want 5µs", got)
	}
	c.Advance(2 * Second)
	want := 2*Second + 5*Microsecond
	if got := c.Now(); got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestReset(t *testing.T) {
	var c Clock
	c.Advance(Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset, Now() = %v, want 0", c.Now())
	}
}

func TestSince(t *testing.T) {
	var c Clock
	c.Advance(10 * Millisecond)
	mark := c.Now()
	c.Advance(3 * Millisecond)
	if got := c.Since(mark); got != 3*Millisecond {
		t.Fatalf("Since = %v, want 3ms", got)
	}
}

func TestUnitRatios(t *testing.T) {
	if Second != 1e9*Nanosecond {
		t.Errorf("Second = %d ns, want 1e9", int64(Second))
	}
	if Millisecond != 1e6*Nanosecond {
		t.Errorf("Millisecond = %d ns, want 1e6", int64(Millisecond))
	}
	if Microsecond != 1e3*Nanosecond {
		t.Errorf("Microsecond = %d ns, want 1e3", int64(Microsecond))
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	cases := []float64{0, 1, 0.5, 1.25e-3, 3600}
	for _, s := range cases {
		d := FromSeconds(s)
		if got := d.Seconds(); got != s {
			t.Errorf("FromSeconds(%v).Seconds() = %v", s, got)
		}
	}
}

func TestFromNanosRounds(t *testing.T) {
	if got := FromNanos(1.6); got != 2 {
		t.Errorf("FromNanos(1.6) = %d, want 2", got)
	}
	if got := FromNanos(1.4); got != 1 {
		t.Errorf("FromNanos(1.4) = %d, want 1", got)
	}
	if got := FromNanos(-1.6); got != -2 {
		t.Errorf("FromNanos(-1.6) = %d, want -2", got)
	}
}

func TestRealConversion(t *testing.T) {
	d := FromReal(250 * time.Millisecond)
	if d != 250*Millisecond {
		t.Fatalf("FromReal = %v, want 250ms", d)
	}
	if d.Real() != 250*time.Millisecond {
		t.Fatalf("Real = %v, want 250ms", d.Real())
	}
}

func TestMicroseconds(t *testing.T) {
	d := 1500 * Nanosecond
	if got := d.Microseconds(); got != 1.5 {
		t.Fatalf("Microseconds = %v, want 1.5", got)
	}
}

// Property: advancing by a then b equals advancing by a+b.
func TestAdvanceAdditiveProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		var c1, c2 Clock
		c1.Advance(Duration(a))
		c1.Advance(Duration(b))
		c2.Advance(Duration(a) + Duration(b))
		return c1.Now() == c2.Now()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FromReal then Real is the identity on time.Duration.
func TestRealRoundTripProperty(t *testing.T) {
	f := func(ns int64) bool {
		d := time.Duration(ns)
		return FromReal(d).Real() == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
