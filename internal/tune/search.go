package tune

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"mnemo/internal/core"
	"mnemo/internal/registry"
	"mnemo/internal/ycsb"
)

// Search shape. The budget splits three ways: one default-parameter
// evaluation per policy (the comparison baseline), a seeded random
// exploration pass over each tunable policy's space, and the remainder
// spent on successive-halving rounds of coordinate descent around the
// current leaders with a step size that halves every round.
const (
	// searchSurvivors is the number of leaders refined in the first
	// halving round; it halves each round.
	searchSurvivors = 4
	// searchMaxRounds bounds the halving rounds.
	searchMaxRounds = 12
	// searchStep is the first round's coordinate step as a fraction of
	// each parameter's range (its span on the linear scale, its log-span
	// on the log scale).
	searchStep = 0.25
)

// Run searches the policy/parameter space for the cheapest advised
// sizing within cfg.SLO. The search is deterministic for a given
// (Config, workload) — including under any Workers value — because
// random draws happen in a fixed serial order and candidate evaluation
// is pure.
func (t *Tuner) Run(ctx context.Context, cfg Config, w *ycsb.Workload) (*Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	// Surface config errors before spending the budget.
	if _, err := core.NewSharedSession(cfg.Core, w, t.cache); err != nil {
		return nil, err
	}

	st := &search{t: t, cfg: cfg, w: w, seen: map[string]bool{}, remaining: cfg.Budget}

	// Round 0a: every policy at its registry defaults.
	defaults := make([]Candidate, len(cfg.Policies))
	for i, name := range cfg.Policies {
		defaults[i] = Candidate{Policy: name}
	}
	defEvals, err := st.eval(ctx, defaults)
	if err != nil {
		return nil, err
	}

	// Round 0b: seeded random exploration of each tunable space,
	// spending about half of what is left so the halving rounds keep
	// the other half.
	tunable := st.tunablePolicies()
	if len(tunable) > 0 && st.remaining > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed))
		perPolicy := (st.remaining / 2) / len(tunable)
		var explore []Candidate
		for _, e := range tunable {
			for k := 0; k < perPolicy; k++ {
				vec := make(map[string]float64, len(e.Params))
				for _, p := range e.Params {
					vec[p.Name] = sampleParam(p, rng)
				}
				explore = append(explore, Candidate{Policy: e.Name, Params: vec})
			}
		}
		if _, err := st.eval(ctx, explore); err != nil {
			return nil, err
		}
	}

	// Round 0c: cut-targeted knapsack anchors. The integrality gap the
	// anchor rung exploits lives just below the incumbents' advised
	// cuts — an exact packing at slightly less capacity can still keep
	// the SLO where the density prefix cannot. Random exploration almost
	// never lands there, so target it explicitly.
	if st.policySearched("knapsack") && st.remaining > 0 {
		if total := datasetBytes(w); total > 0 {
			var batch []Candidate
			for _, leader := range rankEvals(defEvals) {
				if leader.FastBytes <= 0 {
					continue
				}
				cut := float64(leader.FastBytes) / float64(total)
				for _, mult := range [...]float64{1, 0.97, 0.93, 0.88} {
					anchor := math.Min(1, cut*mult)
					batch = append(batch, Candidate{Policy: "knapsack",
						Params: map[string]float64{"anchor": anchor}})
				}
			}
			if _, err := st.eval(ctx, batch); err != nil {
				return nil, err
			}
		}
	}

	// Halving rounds: refine a shrinking set of leaders with a halving
	// coordinate step.
	for round := 0; round < searchMaxRounds && st.remaining > 0 && len(tunable) > 0; round++ {
		temp := math.Pow(0.5, float64(round))
		survivors := st.leaders(max(1, searchSurvivors>>round))
		var batch []Candidate
		for _, leader := range survivors {
			e, ok := registry.ByName(leader.Candidate.Policy)
			if !ok || len(e.Params) == 0 {
				continue
			}
			base := completeVector(e.Params, leader.Candidate.Params)
			for _, vec := range neighborVectors(e.Params, base, temp) {
				batch = append(batch, Candidate{Policy: e.Name, Params: vec})
			}
		}
		fresh, err := st.eval(ctx, batch)
		if err != nil {
			return nil, err
		}
		if len(fresh) == 0 && temp < 1e-3 {
			break // converged: nothing new at a negligible step
		}
	}

	res := &Result{
		Defaults: rankEvals(defEvals),
		Frontier: frontier(st.evals),
		Evals:    st.evals,
		Stats:    t.cache.Stats(),
		SLO:      cfg.SLO,
	}
	res.Winner = res.Frontier[0]
	for _, e := range st.evals {
		if e.better(res.Winner) {
			res.Winner = e
		}
	}
	return res, nil
}

// search is one Run's mutable state.
type search struct {
	t         *Tuner
	cfg       Config
	w         *ycsb.Workload
	seen      map[string]bool // canonical candidate name → already evaluated
	evals     []Eval
	remaining int
}

// eval evaluates the still-unseen candidates in the batch (in order,
// truncated to the remaining budget) and returns the fresh evaluations.
func (st *search) eval(ctx context.Context, cands []Candidate) ([]Eval, error) {
	var fresh []Candidate
	for _, c := range cands {
		if st.remaining-len(fresh) <= 0 {
			break
		}
		name, err := st.canonicalName(c)
		if err != nil {
			return nil, err
		}
		if st.seen[name] {
			continue
		}
		st.seen[name] = true
		fresh = append(fresh, c)
	}
	if len(fresh) == 0 {
		return nil, nil
	}
	evals, err := st.t.Sweep(ctx, st.cfg, st.w, fresh)
	if err != nil {
		return nil, err
	}
	st.remaining -= len(evals)
	st.evals = append(st.evals, evals...)
	return evals, nil
}

// canonicalName resolves a candidate to its qualified policy-instance
// name — the dedup key, so a partial vector equals its completed form
// and a default-valued vector equals the plain policy.
func (st *search) canonicalName(c Candidate) (string, error) {
	pol, err := registry.NewParams(c.Policy, st.cfg.Core.Server.Seed, c.Params)
	if err != nil {
		return "", err
	}
	return pol.Name(), nil
}

// policySearched reports whether the run's policy set includes name.
func (st *search) policySearched(name string) bool {
	for _, n := range st.cfg.Policies {
		if n == name {
			return true
		}
	}
	return false
}

// datasetBytes sums the workload's record sizes.
func datasetBytes(w *ycsb.Workload) int64 {
	var total int64
	for _, rec := range w.Dataset.Records {
		total += int64(rec.Size)
	}
	return total
}

// tunablePolicies filters the searched policies down to those with a
// parameter space.
func (st *search) tunablePolicies() []registry.Entry {
	var out []registry.Entry
	for _, name := range st.cfg.Policies {
		if e, ok := registry.ByName(name); ok && len(e.Params) > 0 {
			out = append(out, e)
		}
	}
	return out
}

// leaders returns the best n tunable evaluations so far.
func (st *search) leaders(n int) []Eval {
	var tunable []Eval
	for _, e := range st.evals {
		if entry, ok := registry.ByName(e.Candidate.Policy); ok && len(entry.Params) > 0 {
			tunable = append(tunable, e)
		}
	}
	tunable = rankEvals(tunable)
	if len(tunable) > n {
		tunable = tunable[:n]
	}
	return tunable
}

// rankEvals sorts a copy best-first under the search objective.
func rankEvals(evals []Eval) []Eval {
	out := make([]Eval, len(evals))
	copy(out, evals)
	sort.SliceStable(out, func(i, j int) bool { return out[i].better(out[j]) })
	return out
}

// sampleParam draws one in-bounds value, uniform on the parameter's
// scale (linear, or log when flagged and the range is positive).
func sampleParam(p registry.Param, rng *rand.Rand) float64 {
	var v float64
	if p.Log && p.Min > 0 {
		lo, hi := math.Log(p.Min), math.Log(p.Max)
		v = math.Exp(lo + rng.Float64()*(hi-lo))
	} else {
		v = p.Min + rng.Float64()*(p.Max-p.Min)
	}
	return p.Clamp(v)
}

// completeVector overlays a partial vector on the space's defaults.
func completeVector(space registry.ParamSpace, partial map[string]float64) map[string]float64 {
	vec := space.Defaults()
	for k, v := range partial {
		vec[k] = v
	}
	return vec
}

// neighborVectors generates the coordinate-descent moves around base:
// for each parameter, one step down and one step up at the given
// temperature (step fraction searchStep·temp of the range on the
// parameter's scale), clamped to bounds; moves that clamp back onto the
// base value are dropped.
func neighborVectors(space registry.ParamSpace, base map[string]float64, temp float64) []map[string]float64 {
	var out []map[string]float64
	for _, p := range space {
		cur := base[p.Name]
		var lo, hi float64
		if p.Log && p.Min > 0 && cur > 0 {
			f := math.Pow(p.Max/p.Min, searchStep*temp)
			lo, hi = cur/f, cur*f
		} else {
			d := (p.Max - p.Min) * searchStep * temp
			lo, hi = cur-d, cur+d
		}
		for _, v := range [2]float64{p.Clamp(lo), p.Clamp(hi)} {
			if v == cur {
				continue
			}
			vec := make(map[string]float64, len(base))
			for k, bv := range base {
				vec[k] = bv
			}
			vec[p.Name] = v
			out = append(out, vec)
		}
	}
	return out
}
