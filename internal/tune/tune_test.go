package tune

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"mnemo/internal/core"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

func tuneWorkload(t *testing.T) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name: "tune-test", Keys: 150, Requests: 3000, Seed: 9,
		ReadRatio: 0.9,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		Sizes:     ycsb.SizeTrendingPreview,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return w
}

func tuneConfig() Config {
	return Config{Core: core.DefaultConfig(server.RedisLike, 42), SLO: 0.10}
}

// stripped clears the unexported curve pointers so evaluation slices
// compare by value.
func stripped(evals []Eval) []Eval {
	out := make([]Eval, len(evals))
	copy(out, evals)
	for i := range out {
		out[i].curve = nil
	}
	return out
}

// The memoized sweep must be bit-identical to the frozen naive
// pipeline — evaluations, curve CSV bytes and advised cost — across
// policies with and without parameter vectors (S4).
func TestSweepMatchesNaiveBitIdentical(t *testing.T) {
	w := tuneWorkload(t)
	cfg := tuneConfig()
	ctx := context.Background()
	cands := []Candidate{
		{Policy: "touch"},
		{Policy: "mnemot"},
		{Policy: "knapsack"},
		{Policy: "knapsack", Params: map[string]float64{"anchor": 0.2}},
		{Policy: "freqdecay", Params: map[string]float64{"decay": 0.25}},
		{Policy: "pagesample", Params: map[string]float64{"rate": 1000}},
		{Policy: "mnemot"}, // duplicate: memoized twice, naive measures twice
	}

	naive, err := Naive(ctx, cfg, w, cands)
	if err != nil {
		t.Fatalf("Naive: %v", err)
	}
	tuner := New()
	memo, err := tuner.Sweep(ctx, cfg, w, cands)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if !reflect.DeepEqual(stripped(memo), stripped(naive)) {
		t.Fatalf("memoized evals differ from naive:\n%+v\nvs\n%+v", stripped(memo), stripped(naive))
	}
	for i := range cands {
		var nb, mb bytes.Buffer
		if err := naive[i].Curve().WriteCSV(&nb); err != nil {
			t.Fatalf("naive WriteCSV: %v", err)
		}
		if err := memo[i].Curve().WriteCSV(&mb); err != nil {
			t.Fatalf("memoized WriteCSV: %v", err)
		}
		if !bytes.Equal(nb.Bytes(), mb.Bytes()) {
			t.Fatalf("candidate %s: curve CSV bytes differ between naive and memoized", cands[i])
		}
	}
	if st := tuner.Cache().Stats(); st.Measurements != 1 {
		t.Fatalf("memoized sweep executed %d measurements for %d candidates, want 1", st.Measurements, len(cands))
	}
}

// A tuning run is bit-deterministic for a fixed seed under any worker
// count (S4).
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	w := tuneWorkload(t)
	var results []*Result
	for _, workers := range []int{1, 2, 8} {
		cfg := tuneConfig()
		cfg.Budget = 24
		cfg.Seed = 7
		cfg.Workers = workers
		cfg.Policies = []string{"touch", "freqdecay", "knapsack"}
		res, err := New().Run(context.Background(), cfg, w)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(stripped(results[i].Evals), stripped(results[0].Evals)) {
			t.Fatalf("worker count changed the evaluation sequence")
		}
		if !reflect.DeepEqual(stripped(results[i].Frontier), stripped(results[0].Frontier)) {
			t.Fatalf("worker count changed the frontier")
		}
		if results[i].Winner.PolicyName != results[0].Winner.PolicyName {
			t.Fatalf("worker count changed the winner: %q vs %q",
				results[i].Winner.PolicyName, results[0].Winner.PolicyName)
		}
	}
}

// Run's frontier is a valid Pareto frontier and the winner leads it.
func TestRunFrontierInvariants(t *testing.T) {
	w := tuneWorkload(t)
	cfg := tuneConfig()
	cfg.Budget = 20
	cfg.Policies = []string{"mnemot", "knapsack"}
	res, err := New().Run(context.Background(), cfg, w)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Frontier) == 0 || len(res.Evals) == 0 {
		t.Fatal("empty run result")
	}
	for i := 1; i < len(res.Frontier); i++ {
		prev, cur := res.Frontier[i-1], res.Frontier[i]
		if cur.CostFactor <= prev.CostFactor || cur.Slowdown >= prev.Slowdown {
			t.Fatalf("frontier not Pareto-ordered at %d: %+v then %+v", i, prev, cur)
		}
	}
	if res.Winner.CostFactor != res.Frontier[0].CostFactor {
		t.Fatalf("winner cost %v is not the frontier's best %v", res.Winner.CostFactor, res.Frontier[0].CostFactor)
	}
	for _, e := range res.Evals {
		if e.Slowdown > cfg.SLO+1e-9 && e.Satisfiable {
			t.Fatalf("eval %s flagged satisfiable beyond the SLO: slowdown %v", e.PolicyName, e.Slowdown)
		}
	}
	if len(res.Defaults) != len(cfg.Policies) {
		t.Fatalf("got %d default evals for %d policies", len(res.Defaults), len(cfg.Policies))
	}
	if res.Stats.Measurements != 1 {
		t.Fatalf("run executed %d measurements, want 1", res.Stats.Measurements)
	}
}

// Config validation produces descriptive errors (S3).
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero SLO", func(c *Config) { c.SLO = 0 }, "SLO 0 must be positive"},
		{"huge SLO", func(c *Config) { c.SLO = 11 }, "outside (0,10]"},
		{"negative budget", func(c *Config) { c.Budget = -1 }, "must be non-negative"},
		{"excess budget", func(c *Config) { c.Budget = MaxBudget + 1 }, "above the cap"},
		{"negative workers", func(c *Config) { c.Workers = -2 }, "Workers -2 must be non-negative"},
		{"unknown policy", func(c *Config) { c.Policies = []string{"nosuch"} }, `unknown policy "nosuch"`},
		{"duplicate policy", func(c *Config) { c.Policies = []string{"touch", "touch"} }, "listed twice"},
		{"budget below policies", func(c *Config) { c.Budget = 2 }, "below the 8 policies"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tuneConfig()
			tc.mut(&cfg)
			_, err := cfg.normalized()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("normalized() error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// A spec written from a run's winner replays bit-identically; a
// tampered expectation is caught.
func TestSpecRoundTripAndReplay(t *testing.T) {
	recipe := WorkloadRecipe{Name: "ycsb_b", Seed: 5, Keys: 150, Requests: 3000}
	w, err := resolveRecipe(recipe)
	if err != nil {
		t.Fatalf("resolve recipe: %v", err)
	}
	cfg := tuneConfig()
	cfg.Budget = 16
	cfg.Policies = []string{"mnemot", "knapsack"}
	tuner := New()
	res, err := tuner.Run(context.Background(), cfg, w)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	spec, err := tuner.NewSpec(res, cfg, w, recipe)
	if err != nil {
		t.Fatalf("NewSpec: %v", err)
	}

	var buf bytes.Buffer
	if err := spec.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	decoded, err := DecodeSpec(&buf)
	if err != nil {
		t.Fatalf("DecodeSpec: %v", err)
	}
	if !reflect.DeepEqual(decoded, spec) {
		t.Fatalf("spec did not round-trip:\n%+v\nvs\n%+v", decoded, spec)
	}

	// Replay through a fresh tuner — nothing shared with the run.
	if _, err := New().Replay(context.Background(), decoded); err != nil {
		t.Fatalf("Replay: %v", err)
	}

	// A drifted expectation must be detected.
	bad := *decoded
	bad.Expected.FastBytes++
	if _, err := New().Replay(context.Background(), &bad); err == nil ||
		!strings.Contains(err.Error(), "diverged from spec") {
		t.Fatalf("tampered spec replayed cleanly (err %v)", err)
	}

	// A drifted recipe must be detected via the workload hash.
	badW := *decoded
	badW.Workload.Seed++
	if _, err := New().Replay(context.Background(), &badW); err == nil ||
		!strings.Contains(err.Error(), "workload hash") {
		t.Fatalf("drifted recipe replayed cleanly (err %v)", err)
	}
}

// DecodeSpec rejects malformed documents with descriptive errors.
func TestDecodeSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"bad version", `{"version":9,"workload":{"name":"ycsb_b"},"workload_hash":"0","engine":"redislike","runs":1,"price_factor":0.2,"slo":0.1,"policy":"touch","expected":{}}`, "version 9"},
		{"unknown field", `{"version":1,"bogus":true}`, "bogus"},
		{"no workload", `{"version":1,"workload":{"name":""},"workload_hash":"0","engine":"redislike","runs":1,"price_factor":0.2,"slo":0.1,"policy":"touch","expected":{}}`, "no workload name"},
		{"bad hash", `{"version":1,"workload":{"name":"ycsb_b"},"workload_hash":"zz","engine":"redislike","runs":1,"price_factor":0.2,"slo":0.1,"policy":"touch","expected":{}}`, "not a 64-bit hex hash"},
		{"bad engine", `{"version":1,"workload":{"name":"ycsb_b"},"workload_hash":"0","engine":"oracle","runs":1,"price_factor":0.2,"slo":0.1,"policy":"touch","expected":{}}`, `unknown engine "oracle"`},
		{"bad policy", `{"version":1,"workload":{"name":"ycsb_b"},"workload_hash":"0","engine":"redislike","runs":1,"price_factor":0.2,"slo":0.1,"policy":"nope","expected":{}}`, `unknown policy "nope"`},
		{"bad param", `{"version":1,"workload":{"name":"ycsb_b"},"workload_hash":"0","engine":"redislike","runs":1,"price_factor":0.2,"slo":0.1,"policy":"knapsack","params":{"anchor":7},"expected":{}}`, "outside [0,1]"},
		{"bad runtime", `{"version":1,"workload":{"name":"ycsb_b"},"workload_hash":"0","engine":"redislike","runs":1,"price_factor":0.2,"slo":0.1,"policy":"touch","runtime":{"nope":1},"expected":{}}`, `unknown param "nope"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec(strings.NewReader(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("DecodeSpec error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// DefaultGrid is deterministic, dedup-free at the sizes CI uses, and
// evaluates cleanly.
func TestDefaultGrid(t *testing.T) {
	g1, g2 := DefaultGrid(32), DefaultGrid(32)
	if !reflect.DeepEqual(g1, g2) {
		t.Fatal("DefaultGrid is not deterministic")
	}
	if len(g1) != 32 {
		t.Fatalf("DefaultGrid(32) returned %d candidates", len(g1))
	}
	seen := map[string]bool{}
	for _, c := range g1 {
		if seen[c.String()] {
			t.Fatalf("duplicate candidate %s", c)
		}
		seen[c.String()] = true
	}
	if len(DefaultGrid(48)) != 48 {
		t.Fatal("DefaultGrid did not extend to 48")
	}
}
