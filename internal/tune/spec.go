package tune

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"mnemo/internal/core"
	"mnemo/internal/registry"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// SpecVersion is the tuned-config spec format version this package
// reads and writes.
const SpecVersion = 1

// WorkloadRecipe regenerates the tuned workload: a built-in workload
// name (Table III preset or YCSB core workload) plus the generation
// seed and optional size overrides, exactly the inputs of
// registry.ResolveWorkload.
type WorkloadRecipe struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// Keys/Requests override the preset's dimensions; 0 keeps them.
	Keys     int `json:"keys,omitempty"`
	Requests int `json:"requests,omitempty"`
}

// Expected is the tuned configuration's advised outcome, recorded so a
// replay can verify it reproduces bit-identically.
type Expected struct {
	CostFactor float64 `json:"cost_factor"`
	Slowdown   float64 `json:"slowdown"`
	FastBytes  int64   `json:"fast_bytes"`
	KeysInFast int     `json:"keys_in_fast"`
}

// Spec is a reproducible tuned configuration: everything needed to
// regenerate the workload, rebuild the measurement config, construct
// the winning policy instance and verify the advised outcome
// bit-identically (encoding/json round-trips float64 exactly). Written
// by cmd/mnemo-tune, replayed by `cmd/mnemo -config`.
type Spec struct {
	Version      int                `json:"version"`
	Workload     WorkloadRecipe     `json:"workload"`
	WorkloadHash string             `json:"workload_hash"`
	Engine       string             `json:"engine"`
	Seed         int64              `json:"seed"`
	Runs         int                `json:"runs"`
	PriceFactor  float64            `json:"price_factor"`
	NoiseSigma   float64            `json:"noise_sigma"`
	SizeAware    bool               `json:"size_aware,omitempty"`
	SLO          float64            `json:"slo"`
	Policy       string             `json:"policy"`
	Params       map[string]float64 `json:"params,omitempty"`
	// Runtime carries the resilience knobs the measurement ran under
	// (keys from registry.RuntimeParams: retries, min_runs, outlier_mad).
	Runtime  map[string]float64 `json:"runtime,omitempty"`
	Expected Expected           `json:"expected"`
}

// NewSpec captures a tuning run's winner as a replayable spec. The
// recipe must regenerate the workload the run tuned (Replay verifies
// this via the content hash).
func (t *Tuner) NewSpec(res *Result, cfg Config, w *ycsb.Workload, recipe WorkloadRecipe) (*Spec, error) {
	whash, err := t.cache.WorkloadHash(w)
	if err != nil {
		return nil, err
	}
	cc := cfg.Core
	// Resolve the defaults the session layer would apply, so the spec
	// always records concrete values.
	if cc.Runs == 0 {
		cc.Runs = 1
	}
	if cc.PriceFactor == 0 {
		cc.PriceFactor = core.DefaultConfig(cc.Server.Engine, cc.Server.Seed).PriceFactor
	}
	s := &Spec{
		Version:      SpecVersion,
		Workload:     recipe,
		WorkloadHash: fmt.Sprintf("%016x", whash),
		Engine:       cc.Server.Engine.String(),
		Seed:         cc.Server.Seed,
		Runs:         cc.Runs,
		PriceFactor:  cc.PriceFactor,
		NoiseSigma:   cc.Server.NoiseSigma,
		SizeAware:    cc.SizeAwareEstimate,
		SLO:          cfg.SLO,
		Policy:       res.Winner.Candidate.Policy,
		Params:       res.Winner.Candidate.Params,
		Expected: Expected{
			CostFactor: res.Winner.CostFactor,
			Slowdown:   res.Winner.Slowdown,
			FastBytes:  res.Winner.FastBytes,
			KeysInFast: res.Winner.KeysInFast,
		},
	}
	runtime := map[string]float64{}
	if r := cc.Resilience; r.Retries != 0 || r.MinRuns != 0 || r.OutlierMAD != 0 {
		runtime["retries"] = float64(r.Retries)
		runtime["min_runs"] = float64(r.MinRuns)
		runtime["outlier_mad"] = r.OutlierMAD
	}
	if len(runtime) > 0 {
		s.Runtime = runtime
	}
	return s, s.Validate()
}

// Validate checks a spec's internal consistency without running
// anything.
func (s *Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("tune: spec version %d, this build reads version %d", s.Version, SpecVersion)
	}
	if s.Workload.Name == "" {
		return fmt.Errorf("tune: spec has no workload name")
	}
	if _, err := strconv.ParseUint(s.WorkloadHash, 16, 64); err != nil {
		return fmt.Errorf("tune: spec workload_hash %q is not a 64-bit hex hash", s.WorkloadHash)
	}
	if _, ok := server.EngineByName(s.Engine); !ok {
		return fmt.Errorf("tune: spec names unknown engine %q", s.Engine)
	}
	if s.Runs < 1 {
		return fmt.Errorf("tune: spec runs %d must be ≥ 1", s.Runs)
	}
	if s.PriceFactor <= 0 || s.PriceFactor > 1 {
		return fmt.Errorf("tune: spec price_factor %v outside (0,1]", s.PriceFactor)
	}
	if s.SLO <= 0 {
		return fmt.Errorf("tune: spec slo %v must be positive", s.SLO)
	}
	e, ok := registry.ByName(s.Policy)
	if !ok {
		return fmt.Errorf("tune: spec names unknown policy %q (want one of %v)", s.Policy, registry.Names())
	}
	if len(s.Params) > 0 {
		if err := e.Params.Validate(s.Params); err != nil {
			return fmt.Errorf("tune: spec params: %w", err)
		}
	}
	if len(s.Runtime) > 0 {
		if err := registry.RuntimeParams().Validate(s.Runtime); err != nil {
			return fmt.Errorf("tune: spec runtime: %w", err)
		}
	}
	return nil
}

// Encode writes the spec as indented JSON.
func (s *Spec) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DecodeSpec reads and validates a spec.
func DecodeSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("tune: decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Config rebuilds the measurement configuration the spec ran under.
func (s *Spec) Config() (Config, error) {
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	engine, _ := server.EngineByName(s.Engine)
	cc := core.DefaultConfig(engine, s.Seed)
	cc.Runs = s.Runs
	cc.PriceFactor = s.PriceFactor
	cc.Server.NoiseSigma = s.NoiseSigma
	cc.SizeAwareEstimate = s.SizeAware
	cc.Resilience.Retries = int(s.Runtime["retries"])
	cc.Resilience.MinRuns = int(s.Runtime["min_runs"])
	cc.Resilience.OutlierMAD = s.Runtime["outlier_mad"]
	return Config{Core: cc, SLO: s.SLO, Policies: []string{s.Policy}}, nil
}

// Check compares an evaluation against the spec's expected block,
// bit-exactly.
func (s *Spec) Check(e Eval) error {
	got := Expected{CostFactor: e.CostFactor, Slowdown: e.Slowdown,
		FastBytes: e.FastBytes, KeysInFast: e.KeysInFast}
	if got != s.Expected {
		return fmt.Errorf("tune: replay diverged from spec: got %+v, spec expects %+v", got, s.Expected)
	}
	return nil
}

// resolveRecipe regenerates a recipe's workload.
func resolveRecipe(r WorkloadRecipe) (*ycsb.Workload, error) {
	return registry.ResolveWorkload(r.Name, r.Seed, r.Keys, r.Requests)
}

// Replay regenerates the spec's workload from its recipe, checks the
// content hash matches, re-evaluates the tuned candidate, and verifies
// the advised outcome is bit-identical to the spec's expected block.
// It returns the replayed evaluation (with its curve) on success.
func (t *Tuner) Replay(ctx context.Context, s *Spec) (Eval, error) {
	cfg, err := s.Config()
	if err != nil {
		return Eval{}, err
	}
	w, err := resolveRecipe(s.Workload)
	if err != nil {
		return Eval{}, fmt.Errorf("tune: spec workload: %w", err)
	}
	whash, err := t.cache.WorkloadHash(w)
	if err != nil {
		return Eval{}, err
	}
	if got := fmt.Sprintf("%016x", whash); got != s.WorkloadHash {
		return Eval{}, fmt.Errorf("tune: regenerated workload hash %s does not match spec workload_hash %s (recipe drifted?)", got, s.WorkloadHash)
	}
	e, err := t.evaluate(ctx, cfg, w, Candidate{Policy: s.Policy, Params: s.Params})
	if err != nil {
		return Eval{}, err
	}
	if err := s.Check(e); err != nil {
		return e, err
	}
	return e, nil
}
