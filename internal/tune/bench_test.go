package tune

import (
	"context"
	"testing"

	"mnemo/internal/core"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// benchWorkload is sized so the baseline measurement dominates a
// candidate evaluation — the regime mnemo-tune exists for.
func benchWorkload(b *testing.B) *ycsb.Workload {
	b.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name: "tune-bench", Keys: 500, Requests: 100_000, Seed: 1,
		ReadRatio: 0.9,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		Sizes:     ycsb.SizeTrendingPreview,
	})
	if err != nil {
		b.Fatalf("Generate: %v", err)
	}
	return w
}

func benchConfig() Config {
	cc := core.DefaultConfig(server.RedisLike, 42)
	cc.Runs = 2
	return Config{Core: cc, SLO: 0.10}
}

// BenchmarkTuneSweep is the headline pairing (gated in CI): the frozen
// naive pipeline measures fresh baselines for every one of 32 candidate
// configs; the memoized sweep shares one content-addressed measurement
// across all of them. Each iteration starts from a cold cache — the
// speedup is pure within-sweep memoization, not cross-iteration reuse.
func BenchmarkTuneSweep(b *testing.B) {
	w := benchWorkload(b)
	cfg := benchConfig()
	cands := DefaultGrid(32)
	ctx := context.Background()

	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Naive(ctx, cfg, w, cands); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := New().Sweep(ctx, cfg, w, cands); err != nil {
				b.Fatal(err)
			}
		}
	})
}
