// Package tune is the search driver over Mnemo's policy/parameter
// space: given one workload, one measurement config and an SLO, it
// looks for the cheapest FastMem sizing any parameterized tiering
// policy can reach within the SLO ("cheapest config within X%
// slowdown") and reports the full cost/slowdown Pareto frontier of
// everything it evaluated.
//
// The tuner is fast because evaluations share a content-addressed
// artifact cache (core.ArtifactCache): all N candidate configs reuse
// exactly one Fast+Slow baseline measurement, candidates that share a
// parameter vector reuse cached orderings and curves, and re-runs that
// only move the SLO cut re-read cached curves without touching the
// testbed at all. Search combines successive halving with coordinate
// descent (DESIGN.md §17), fans evaluations out on the pool worker
// budget, and is bit-deterministic under a fixed seed for any worker
// count.
package tune

import (
	"context"
	"fmt"
	"sort"

	"mnemo/internal/core"
	"mnemo/internal/pool"
	"mnemo/internal/registry"
	"mnemo/internal/ycsb"
)

// DefaultBudget is the evaluation budget when Config.Budget is 0.
const DefaultBudget = 64

// MaxBudget bounds Config.Budget.
const MaxBudget = 100_000

// Candidate is one point of the search space: a registered policy plus
// a (possibly partial) parameter vector. A nil vector means the
// registry defaults.
type Candidate struct {
	Policy string             `json:"policy"`
	Params map[string]float64 `json:"params,omitempty"`
}

// String renders the candidate in its canonical, cache-key-safe form —
// the parameter-qualified policy name.
func (c Candidate) String() string {
	if len(c.Params) == 0 {
		return c.Policy
	}
	return c.Policy + "(" + registry.FormatParams(c.Params) + ")"
}

// Eval is one evaluated candidate: the advisor's cheapest SLO-keeping
// point on the candidate's estimate curve.
type Eval struct {
	Candidate Candidate `json:"candidate"`
	// PolicyName is the constructed policy instance's qualified name
	// (parameter defaults filled in).
	PolicyName string `json:"policy_name"`
	// CostFactor is the advised sizing's memory cost R(p) relative to
	// FastMem-only — the objective, lower is better.
	CostFactor float64 `json:"cost_factor"`
	// Slowdown is the advised sizing's estimated slowdown relative to
	// FastMem-only (≤ the SLO when Satisfiable).
	Slowdown float64 `json:"slowdown"`
	// FastBytes / KeysInFast describe the advised sizing.
	FastBytes  int64 `json:"fast_bytes"`
	KeysInFast int   `json:"keys_in_fast"`
	// CostSavings is 1 − CostFactor.
	CostSavings float64 `json:"cost_savings"`
	// Satisfiable mirrors the advisor's flag.
	Satisfiable bool `json:"satisfiable"`

	// curve retains the evaluated estimate curve for in-package
	// consumers (bit-identity tests, report rendering).
	curve *core.Curve
}

// Curve returns the candidate's evaluated estimate curve (shared,
// read-only).
func (e Eval) Curve() *core.Curve { return e.curve }

// score is the search objective: minimize cost, break ties toward
// smaller slowdown, then toward the lexicographically smaller name so
// every ranking is total and deterministic.
func (e Eval) better(o Eval) bool {
	if e.CostFactor != o.CostFactor {
		return e.CostFactor < o.CostFactor
	}
	if e.Slowdown != o.Slowdown {
		return e.Slowdown < o.Slowdown
	}
	return e.PolicyName < o.PolicyName
}

// Config parameterizes one tuning run.
type Config struct {
	// Core is the measurement configuration every candidate is
	// evaluated under (engine, machine, runs, seed, resilience). It is
	// part of the artifact cache key: candidates within one run always
	// share its single baseline measurement.
	Core core.Config
	// SLO is the permissible slowdown relative to FastMem-only
	// (e.g. 0.10); must be positive.
	SLO float64
	// Budget caps the number of candidate evaluations (0 = DefaultBudget).
	Budget int
	// Seed drives the search's random exploration. Two runs with equal
	// Config and workload are bit-identical, whatever Workers is.
	Seed int64
	// Workers bounds parallel evaluations (0 = GOMAXPROCS, via the pool
	// worker budget).
	Workers int
	// Policies restricts the search to these registered policies
	// (empty = every registered policy).
	Policies []string
}

// normalized validates and applies defaults.
func (c Config) normalized() (Config, error) {
	if c.SLO <= 0 {
		return c, fmt.Errorf("tune: SLO %v must be positive (the permissible slowdown, e.g. 0.10)", c.SLO)
	}
	if c.SLO > 10 {
		return c, fmt.Errorf("tune: SLO %v outside (0,10] (a 1000%% slowdown bound is not a constraint)", c.SLO)
	}
	if c.Budget < 0 {
		return c, fmt.Errorf("tune: Budget %d must be non-negative (0 means the default of %d)", c.Budget, DefaultBudget)
	}
	if c.Budget == 0 {
		c.Budget = DefaultBudget
	}
	if c.Budget > MaxBudget {
		return c, fmt.Errorf("tune: Budget %d above the cap of %d", c.Budget, MaxBudget)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("tune: Workers %d must be non-negative (0 means GOMAXPROCS)", c.Workers)
	}
	if len(c.Policies) == 0 {
		c.Policies = registry.Names()
	}
	seen := make(map[string]bool, len(c.Policies))
	for _, name := range c.Policies {
		e, ok := registry.ByName(name)
		if !ok {
			return c, fmt.Errorf("tune: unknown policy %q (want one of %v)", name, registry.Names())
		}
		if seen[e.Name] {
			return c, fmt.Errorf("tune: policy %q listed twice", name)
		}
		seen[e.Name] = true
	}
	if c.Budget < len(c.Policies) {
		return c, fmt.Errorf("tune: Budget %d below the %d policies to seed (raise Budget or restrict Policies)",
			c.Budget, len(c.Policies))
	}
	return c, nil
}

// Result is a tuning run's full outcome.
type Result struct {
	// Winner is the best evaluation found: the cheapest advised sizing
	// across every candidate.
	Winner Eval
	// Defaults holds each searched policy's default-parameter
	// evaluation, best first — the baseline the tuned winner is
	// measured against.
	Defaults []Eval
	// Frontier is the Pareto frontier over (CostFactor, Slowdown) of
	// every evaluation, cheapest first: no point on it is beaten on
	// both axes by any other evaluation.
	Frontier []Eval
	// Evals lists every evaluation in deterministic search order.
	Evals []Eval
	// Stats snapshots the artifact cache after the run: Measurements is
	// the number of Fast+Slow baseline sweeps actually executed
	// (1 per distinct measurement config — the memoization headline).
	Stats core.CacheStats
	// SLO echoes the objective the run used.
	SLO float64
}

// Gain is the winner's cost improvement over the best default-parameter
// policy (0 when tuning found nothing better).
func (r *Result) Gain() float64 {
	if len(r.Defaults) == 0 {
		return 0
	}
	return r.Defaults[0].CostFactor - r.Winner.CostFactor
}

// Tuner runs tuning searches against one shared artifact cache.
// Successive Run calls — a second SLO, a widened policy set — reuse
// every artifact the cache already holds, so only genuinely new
// (workload, config, policy) combinations cost anything. The zero value
// is not usable; construct with New. Safe for concurrent use.
type Tuner struct {
	cache *core.ArtifactCache
}

// New returns a Tuner with a fresh artifact cache.
func New() *Tuner { return &Tuner{cache: core.NewArtifactCache()} }

// Cache exposes the tuner's artifact cache (e.g. to share it with
// sessions outside the tuner).
func (t *Tuner) Cache() *core.ArtifactCache { return t.cache }

// evaluate profiles one candidate through a cache-backed session and
// reads the advisor's answer off its curve.
func (t *Tuner) evaluate(ctx context.Context, cfg Config, w *ycsb.Workload, cand Candidate) (Eval, error) {
	pol, err := registry.NewParams(cand.Policy, cfg.Core.Server.Seed, cand.Params)
	if err != nil {
		return Eval{}, fmt.Errorf("tune: %w", err)
	}
	s, err := core.NewSharedSession(cfg.Core, w, t.cache)
	if err != nil {
		return Eval{}, err
	}
	curve, err := s.Estimate(ctx, pol)
	if err != nil {
		return Eval{}, err
	}
	adv, err := core.Advise(curve, cfg.SLO)
	if err != nil {
		return Eval{}, err
	}
	return evalOf(cand, pol.Name(), curve, adv), nil
}

// evalOf assembles an Eval from an advised curve point.
func evalOf(cand Candidate, policyName string, curve *core.Curve, adv core.Advice) Eval {
	var slowdown float64
	if fast := float64(curve.FastOnly().EstRuntime); fast > 0 {
		slowdown = float64(adv.Point.EstRuntime)/fast - 1
	}
	return Eval{
		Candidate:   cand,
		PolicyName:  policyName,
		CostFactor:  adv.Point.CostFactor,
		Slowdown:    slowdown,
		FastBytes:   adv.Point.FastBytes,
		KeysInFast:  adv.Point.KeysInFast,
		CostSavings: adv.CostSavings,
		Satisfiable: adv.Satisfiable,
		curve:       curve,
	}
}

// Sweep evaluates the candidates in order against the tuner's shared
// cache, fanned out on the pool worker budget. Results are returned in
// candidate order and are bit-identical for any worker count. This is
// the memoized bulk-evaluation primitive Run's search is built on,
// exported for benchmarks and equivalence tests.
func (t *Tuner) Sweep(ctx context.Context, cfg Config, w *ycsb.Workload, cands []Candidate) ([]Eval, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	evals := make([]Eval, len(cands))
	errs := make([]error, len(cands))
	workers := pool.Workers(cfg.Workers, len(cands))
	if err := pool.RunCtx(ctx, len(cands), workers, func(i int) {
		evals[i], errs[i] = t.evaluate(ctx, cfg, w, cands[i])
	}); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("tune: candidate %s: %w", cands[i], err)
		}
	}
	return evals, nil
}

// Naive evaluates the candidates through the frozen per-config
// pipeline: one fresh, unshared profiling session per candidate, each
// re-measuring its own baselines — what evaluating N configs cost
// before the content-addressed cache. It is the benchmark and
// equivalence reference for Sweep and is intentionally kept dumb.
func Naive(ctx context.Context, cfg Config, w *ycsb.Workload, cands []Candidate) ([]Eval, error) {
	evals := make([]Eval, len(cands))
	for i, cand := range cands {
		pol, err := registry.NewParams(cand.Policy, cfg.Core.Server.Seed, cand.Params)
		if err != nil {
			return nil, fmt.Errorf("tune: %w", err)
		}
		s, err := core.NewSession(cfg.Core, w)
		if err != nil {
			return nil, err
		}
		curve, err := s.Estimate(ctx, pol)
		if err != nil {
			return nil, fmt.Errorf("tune: candidate %s: %w", cand, err)
		}
		adv, err := core.Advise(curve, cfg.SLO)
		if err != nil {
			return nil, err
		}
		evals[i] = evalOf(cand, pol.Name(), curve, adv)
	}
	return evals, nil
}

// frontier extracts the Pareto-optimal evaluations over
// (CostFactor, Slowdown), cheapest first. Duplicate (cost, slowdown)
// points keep one representative.
func frontier(evals []Eval) []Eval {
	if len(evals) == 0 {
		return nil
	}
	sorted := make([]Eval, len(evals))
	copy(sorted, evals)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].better(sorted[j]) })
	var out []Eval
	bestSlowdown := 0.0
	for i, e := range sorted {
		if i > 0 && e.CostFactor == out[len(out)-1].CostFactor && e.Slowdown == out[len(out)-1].Slowdown {
			continue // duplicate point
		}
		if i == 0 || e.Slowdown < bestSlowdown {
			out = append(out, e)
			bestSlowdown = e.Slowdown
		}
	}
	return out
}
