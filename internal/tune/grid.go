package tune

import (
	"math"

	"mnemo/internal/registry"
)

// DefaultGrid returns n deterministic candidates spanning the registry:
// every registered policy at its defaults first, then a fixed spread of
// parameter variations over the tunable spaces, then (if n is larger
// still) a golden-ratio sweep of knapsack anchors. The same n always
// yields the same candidates — the benchmark and smoke-test workload.
func DefaultGrid(n int) []Candidate {
	var out []Candidate
	add := func(c Candidate) {
		if len(out) < n {
			out = append(out, c)
		}
	}
	for _, name := range registry.Names() {
		add(Candidate{Policy: name})
	}
	for _, c := range []Candidate{
		{Policy: "freqdecay", Params: map[string]float64{"decay": 0.1}},
		{Policy: "freqdecay", Params: map[string]float64{"decay": 0.25}},
		{Policy: "freqdecay", Params: map[string]float64{"decay": 0.8}},
		{Policy: "freqdecay", Params: map[string]float64{"decay": 0.3, "epochs": 4}},
		{Policy: "freqdecay", Params: map[string]float64{"decay": 0.5, "epochs": 16}},
		{Policy: "freqdecay", Params: map[string]float64{"decay": 0.7, "epochs": 32}},
		{Policy: "knapsack", Params: map[string]float64{"anchor": 0.05}},
		{Policy: "knapsack", Params: map[string]float64{"anchor": 0.1}},
		{Policy: "knapsack", Params: map[string]float64{"anchor": 0.15}},
		{Policy: "knapsack", Params: map[string]float64{"anchor": 0.25}},
		{Policy: "knapsack", Params: map[string]float64{"anchor": 0.4}},
		{Policy: "knapsack", Params: map[string]float64{"anchor": 0.2, "rungs": 2}},
		{Policy: "knapsack", Params: map[string]float64{"anchor": 0.3, "rungs": 5}},
		{Policy: "pagesample", Params: map[string]float64{"rate": 500}},
		{Policy: "pagesample", Params: map[string]float64{"rate": 1000}},
		{Policy: "pagesample", Params: map[string]float64{"rate": 2000}},
		{Policy: "pagesample", Params: map[string]float64{"rate": 8000}},
		{Policy: "pagesample", Params: map[string]float64{"rate": 16000}},
		{Policy: "adaptive-freq", Params: map[string]float64{"decay": 0.2}},
		{Policy: "adaptive-freq", Params: map[string]float64{"decay": 0.35}},
		{Policy: "adaptive-freq", Params: map[string]float64{"decay": 0.65}},
		{Policy: "adaptive-freq", Params: map[string]float64{"decay": 0.8}},
		{Policy: "freqdecay", Params: map[string]float64{"decay": 0.15, "epochs": 2}},
		{Policy: "freqdecay", Params: map[string]float64{"decay": 0.9, "epochs": 64}},
	} {
		add(c)
	}
	// Low-discrepancy anchors fill any remainder without repeats.
	for i := 0; len(out) < n; i++ {
		frac := math.Mod(float64(i+1)*0.6180339887498949, 1)
		anchor := math.Round((0.02+0.96*frac)*1e4) / 1e4
		add(Candidate{Policy: "knapsack", Params: map[string]float64{"anchor": anchor}})
	}
	return out
}
