package mnemo_test

import (
	"fmt"
	"log"
	"strings"

	"mnemo"
)

// The canonical session: profile a Table III workload, ask for the
// cheapest sizing within a 10% slowdown budget. Noise is disabled so the
// output is reproducible.
func Example() {
	w, err := mnemo.WorkloadByName("trending", 42)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := mnemo.Profile(w, mnemo.Options{
		Store:      mnemo.RedisLike,
		Seed:       42,
		SLO:        0.10,
		NoiseSigma: -1, // deterministic for the example
	})
	if err != nil {
		log.Fatal(err)
	}
	a := rep.Advice
	fmt.Printf("cost factor %.2f of DRAM-only (%d of %d keys in FastMem)\n",
		a.Point.CostFactor, a.Point.KeysInFast, len(w.Dataset.Records))
	// Output:
	// cost factor 0.36 of DRAM-only (2005 of 10000 keys in FastMem)
}

// Re-asking the advisor with different budgets reuses the curve; no
// further executions happen.
func ExampleAdvise() {
	w, err := mnemo.WorkloadByName("trending", 42)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, Seed: 42, NoiseSigma: -1})
	if err != nil {
		log.Fatal(err)
	}
	for _, slo := range []float64{0.02, 0.10, 0.50} {
		a, err := mnemo.Advise(rep.Curve, slo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.0f%% slowdown -> cost %.2f\n", slo*100, a.Point.CostFactor)
	}
	// Output:
	// 2% slowdown -> cost 0.54
	// 10% slowdown -> cost 0.36
	// 50% slowdown -> cost 0.20
}

// The cost model alone: the paper's §III example — FastMem sized to 20%
// of the dataset bytes at p = 0.2 costs 36% of a DRAM-only system.
func ExampleCostReduction() {
	fmt.Printf("R = %.2f\n", mnemo.CostReduction(20, 100, 0.2))
	// Output:
	// R = 0.36
}

// Importing a production trace from a Redis MONITOR capture.
func ExampleLoadRedisMonitor() {
	capture := `OK
1530699284.926984 [0 127.0.0.1:51442] "SET" "user:1001" "0123456789"
1530699284.930000 [0 127.0.0.1:51442] "GET" "user:1001"
1530699285.000000 [0 127.0.0.1:51442] "GET" "user:1001"
`
	w, err := mnemo.LoadRedisMonitor(strings.NewReader(capture), 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d key, %d ops, %.0f%% reads\n",
		len(w.Dataset.Records), len(w.Ops), w.ReadFraction()*100)
	// Output:
	// 1 key, 3 ops, 67% reads
}
