package mnemo

import (
	"bytes"
	"reflect"
	"testing"

	"mnemo/internal/obs"
)

// TestObsGoldenEquivalence pins the observability layer's cardinal rule:
// attaching a live sink changes nothing about the simulation. The same
// options with and without Options.Obs must produce bit-identical
// baseline RunStats and byte-identical curve CSV output.
func TestObsGoldenEquivalence(t *testing.T) {
	w := smallWorkload(t)
	opts := Options{Store: DynamoLike, Seed: 11, Runs: 2, SLO: 0.10, Policy: "mnemot"}

	plain, err := Profile(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSink()
	opts.Obs = sink
	observed, err := Profile(w, opts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Baselines, observed.Baselines) {
		t.Errorf("baselines differ with a live sink:\nnil sink:  %+v\nlive sink: %+v",
			plain.Baselines, observed.Baselines)
	}
	var want, got bytes.Buffer
	if err := plain.Curve.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if err := observed.Curve.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("curve CSV bytes differ with a live sink")
	}

	// And the sink actually observed the run.
	if n := sink.Counter("mnemo_client_runs_total").Value(); n != 4 {
		t.Errorf("mnemo_client_runs_total = %d, want 4 (2 runs × 2 baselines)", n)
	}
	if ops := sink.Counter(obs.Name("mnemo_server_ops_total", "engine", "dynamolike")).Value(); ops == 0 {
		t.Error("no server ops recorded")
	}
	if res := sink.Counter(obs.Name("mnemo_registry_policy_resolutions_total", "policy", "mnemot")).Value(); res != 1 {
		t.Errorf("policy resolutions = %d, want 1", res)
	}
	if sink.Journal().Len() == 0 {
		t.Error("journal empty after an observed profile")
	}
}

// TestObsSinkExposition smoke-tests the public sink surface: metrics
// collected through Options.Obs render as Prometheus exposition text.
func TestObsSinkExposition(t *testing.T) {
	w := smallWorkload(t)
	sink := NewSink()
	if _, err := Profile(w, Options{Store: RedisLike, Seed: 3, Obs: sink}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sink.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mnemo_client_runs_total counter",
		`mnemo_server_ops_total{engine="redislike"}`,
		`mnemo_stage_wall_seconds_bucket{stage="measure",le="+Inf"}`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
