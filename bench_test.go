// Benchmarks: one per table and figure of the paper's evaluation, plus
// the DESIGN.md §6 ablations. Each benchmark runs the corresponding
// experiment end to end at the Quick scale (1 000 keys × 10 000 requests,
// 10× below the paper) so `go test -bench=.` finishes in minutes; the
// full-scale regeneration is `go run ./cmd/mnemo-bench`.
//
// Reported custom metrics carry the experiment's headline number (e.g.
// median estimate error %, advised cost factor) so a bench run doubles as
// a regression check on the reproduced results.
package mnemo_test

import (
	"testing"

	"mnemo/internal/experiments"
	"mnemo/internal/server"
)

const benchSeed = 42

var benchScale = experiments.Quick

func BenchmarkFig1CloudMemoryCostShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			lo, hi := 1.0, 0.0
			for _, s := range r.Shares {
				if s.MemoryShare < lo {
					lo = s.MemoryShare
				}
				if s.MemoryShare > hi {
					hi = s.MemoryShare
				}
			}
			b.ReportMetric(lo*100, "min_share_%")
			b.ReportMetric(hi*100, "max_share_%")
		}
	}
}

func BenchmarkTable1MemoryCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if i == 0 {
			b.ReportMetric(r.LatencyFactor(), "latency_factor")
			b.ReportMetric(r.BandwidthFactor(), "bandwidth_factor")
		}
	}
}

func BenchmarkTable2CostBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Rows[2].CostReduction, "worst_case_R")
		}
	}
}

func BenchmarkFig3KeyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(benchScale, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4SizeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig4(benchSeed)
	}
}

func BenchmarkFig5aKeyDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5a(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			c := r.Curves[0] // trending
			b.ReportMetric(c.MeasTput[len(c.MeasTput)-1]/c.MeasTput[0], "trending_fast_over_slow")
		}
	}
}

func BenchmarkFig5bReadWriteRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5b(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ratio := func(c *experiments.CurveComparison) float64 {
				return c.MeasTput[len(c.MeasTput)-1] / c.MeasTput[0]
			}
			b.ReportMetric(ratio(r.Curves[0]), "readonly_gain")
			b.ReportMetric(ratio(r.Curves[1]), "writeheavy_gain")
		}
	}
}

func BenchmarkFig5cRecordSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5c(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ratio := func(c *experiments.CurveComparison) float64 {
				return c.MeasTput[len(c.MeasTput)-1] / c.MeasTput[0]
			}
			b.ReportMetric(ratio(r.Curves[0]), "100KB_gain")
			b.ReportMetric(ratio(r.Curves[2]), "1KB_gain")
		}
	}
}

func BenchmarkFig8aEstimateError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8a(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.OverallMedianPct, "median_err_%")
		}
	}
}

func BenchmarkFig8bStoreComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8b(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Slowdowns[server.RedisLike.String()], "redis_slowdown")
			b.ReportMetric(r.Slowdowns[server.MemcachedLike.String()], "memcached_slowdown")
			b.ReportMetric(r.Slowdowns[server.DynamoLike.String()], "dynamo_slowdown")
		}
	}
}

func BenchmarkFig8cAvgLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8cde(benchScale, server.RedisLike, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.AvgErrMedianPct, "avg_latency_err_%")
		}
	}
}

func BenchmarkFig8dTailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8cde(benchScale, server.DynamoLike, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := len(r.Cost) - 1
			b.ReportMetric(r.P95Ns[last]/1000, "fastmem_p95_us")
			b.ReportMetric(r.P99Ns[last]/1000, "fastmem_p99_us")
		}
	}
}

func BenchmarkFig8fMnemoT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8f(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.TieredGainPct, "tiered_gain_%")
			b.ReportMetric(r.MnemoTMedianErrPct, "mnemot_err_%")
		}
	}
}

func BenchmarkFig9CostReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Cost("trending", server.RedisLike.String()), "redis_trending_cost")
			b.ReportMetric(r.Cost("news_feed", server.RedisLike.String()), "redis_newsfeed_cost")
			b.ReportMetric(r.Cost("trending", server.DynamoLike.String()), "dynamo_trending_cost")
		}
	}
}

func BenchmarkTable4ProfilingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			mnemoT := r.Reports[0].Total().Seconds()
			instr := r.Reports[1].Total().Seconds()
			b.ReportMetric(instr/mnemoT, "instrumented_over_mnemot")
		}
	}
}

func BenchmarkDownsampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Downsample(benchScale, benchSeed, []int{2, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.FullCost, "full_advised_cost")
			b.ReportMetric(r.Rows[len(r.Rows)-1].AdvisedCost, "ds10_advised_cost")
		}
	}
}

func BenchmarkAblationLLC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationLLC(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.WithLLC.MedianErrPct, "with_llc_err_%")
			b.ReportMetric(r.WithoutLLC.MedianErrPct, "no_llc_err_%")
		}
	}
}

func BenchmarkAblationNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationNoise(benchScale, benchSeed, []float64{0, 0.02, 0.05})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Rows[0].MedianErrPct, "sigma0_err_%")
			b.ReportMetric(r.Rows[2].MedianErrPct, "sigma05_err_%")
		}
	}
}

func BenchmarkAblationKnapsack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationKnapsack(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.GreedyCoverage/r.ExactCoverage, "greedy_over_exact")
		}
	}
}

func BenchmarkExtTechnologySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtTech(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if row, ok := r.Row("OptaneDC"); ok {
				b.ReportMetric(row.AdvisedCost, "optane_cost")
			}
			if row, ok := r.Row("CXL-DRAM"); ok {
				b.ReportMetric(row.Slowdown, "cxl_slowdown")
			}
		}
	}
}

func BenchmarkYCSBCoreWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.YCSBCore(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Cost("ycsb_c", server.RedisLike.String()), "ycsbc_redis_cost")
		}
	}
}

func BenchmarkExtTailEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtTails(benchScale, server.RedisLike, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.MedianP95ErrPct, "p95_err_%")
			b.ReportMetric(r.MedianP99ErrPct, "p99_err_%")
		}
	}
}

func BenchmarkModeBExternalTiering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ModeB(benchScale, benchSeed, []int{1, 1024})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.MnemoTAdvisedCost, "mnemot_cost")
			b.ReportMetric(r.Rows[len(r.Rows)-1].AdvisedCost, "sampled_cost")
		}
	}
}

func BenchmarkAblationSizeAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSizeAware(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.MixedGlobalErrPct, "mixed_global_err_%")
			b.ReportMetric(r.MixedSizeAwareErrPct, "mixed_sizeaware_err_%")
		}
	}
}

func BenchmarkAblationAnchor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationAnchor(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.FastAnchorMedianErrPct, "fast_anchor_err_%")
			b.ReportMetric(r.SlowAnchorMedianErrPct, "slow_anchor_err_%")
		}
	}
}
