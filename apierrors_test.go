package mnemo

import (
	"context"
	"strings"
	"testing"
)

// tinyAPIWorkload is the smallest workload the error-path tests profile.
func tinyAPIWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := GenerateWorkload(WorkloadSpec{
		Name: "apierr", Keys: 40, Requests: 200,
		Dist:      DistSpec{Kind: Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 1.0, Sizes: SizeThumbnail, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestOptionsValidation exercises every Options.validate rejection and
// checks the message names the offending field — descriptive errors are
// part of the contract.
func TestOptionsValidation(t *testing.T) {
	w := tinyAPIWorkload(t)
	cases := []struct {
		name string
		opts Options
		want string // substring the error must contain
	}{
		{"unknown engine", Options{Store: Engine(99)}, "unknown store engine"},
		{"negative runs", Options{Runs: -1}, "Runs"},
		{"price factor above 1", Options{PriceFactor: 1.5}, "PriceFactor"},
		{"negative price factor", Options{PriceFactor: -0.2}, "PriceFactor"},
		{"negative SLO", Options{SLO: -0.1}, "SLO"},
		{"fault prob above 1", Options{Fault: FaultSpec{FailProb: 1.5}}, "FailProb"},
		{"negative fault prob", Options{Fault: FaultSpec{StallProb: -0.5}}, "StallProb"},
		{"negative stall", Options{Fault: FaultSpec{StallProb: 0.1, Stall: -Second}}, "Stall"},
		{"negative outlier factor", Options{Fault: FaultSpec{OutlierProb: 0.1, OutlierFactor: -2}}, "OutlierFactor"},
		{"negative run timeout", Options{RunTimeout: -Second}, "RunTimeout"},
		{"negative retries", Options{Retries: -1}, "Retries"},
		{"negative min runs", Options{MinRuns: -1}, "MinRuns"},
		{"negative outlier MAD", Options{OutlierMAD: -3.5}, "OutlierMAD"},
		{"MAD without min runs", Options{OutlierMAD: 3.5}, "MinRuns"},
		{"negative shards", Options{Shards: -1}, "Shards"},
		{"shards above max", Options{Shards: 257}, "Shards"},
		{"negative virtual nodes", Options{VirtualNodes: -1}, "VirtualNodes"},
		{"negative crash prob", Options{Fault: FaultSpec{CrashProb: -0.1}}, "CrashProb"},
		{"crash prob above 1", Options{Fault: FaultSpec{CrashProb: 1.5}}, "CrashProb"},
		{"straggler prob above 1", Options{Fault: FaultSpec{StragglerProb: 2}}, "StragglerProb"},
		{"negative straggler factor", Options{Fault: FaultSpec{StragglerProb: 0.1, StragglerFactor: -4}}, "StragglerFactor"},
		{"negative shard retries", Options{Shards: 2, ShardRetries: -1}, "ShardRetries"},
		{"negative shard fault budget", Options{Shards: 2, ShardFaultBudget: -2}, "ShardFaultBudget"},
		{"fractional hedge factor", Options{Shards: 2, HedgeFactor: 0.5}, "HedgeFactor"},
		{"shard retries without shards", Options{ShardRetries: 1}, "Shards ≥ 2"},
		{"fault budget without shards", Options{ShardFaultBudget: 1}, "Shards ≥ 2"},
		{"hedging on one shard", Options{Shards: 1, HedgeFactor: 2}, "Shards ≥ 2"},
		{"negative epoch ops", Options{EpochOps: -1}, "EpochOps"},
		{"negative migration cost", Options{MigrationCostPerByte: -0.5}, "MigrationCostPerByte"},
		{"negative migration budget", Options{MigrationBudget: -64}, "MigrationBudget"},
		{"migration cost without epochs", Options{MigrationCostPerByte: 0.1}, "EpochOps ≥ 1"},
		{"migration budget without epochs", Options{MigrationBudget: 4096}, "EpochOps ≥ 1"},
		{"epochs on static-only policy", Options{EpochOps: 4096, Policy: "mnemot"}, "static-only"},
		{"epochs on default policy", Options{EpochOps: 4096}, "static-only"},
		{"epochs on unknown policy", Options{EpochOps: 4096, Policy: "no_such"}, "unknown policy"},
		{"unknown policy param", Options{Policy: "freqdecay", PolicyParams: map[string]float64{"rate": 3}}, `unknown param "rate"`},
		{"param below min", Options{Policy: "freqdecay", PolicyParams: map[string]float64{"decay": 0}}, "outside [0.01,1]"},
		{"param above max", Options{Policy: "knapsack", PolicyParams: map[string]float64{"rungs": 9}}, "outside [1,6]"},
		{"fractional integer param", Options{Policy: "freqdecay", PolicyParams: map[string]float64{"epochs": 2.5}}, "must be an integer"},
		{"params on fixed policy", Options{Policy: "mnemot", PolicyParams: map[string]float64{"decay": 0.5}}, "no tunable parameters"},
		{"params on default policy", Options{PolicyParams: map[string]float64{"decay": 0.5}}, "no tunable parameters"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Profile(w, tc.opts); err == nil {
				t.Fatalf("options %+v accepted", tc.opts)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// PriceFactor 1 is the edge of the legal (0,1] range.
	if _, err := Profile(w, Options{PriceFactor: 1}); err != nil {
		t.Fatalf("PriceFactor 1 rejected: %v", err)
	}
}

// TestTuneOptionErrors exercises the Tune entry point's rejections —
// both its own option checks and the search config validation below it.
func TestTuneOptionErrors(t *testing.T) {
	w := tinyAPIWorkload(t)
	ctx := context.Background()
	cases := []struct {
		name  string
		opts  Options
		topts TuneOptions
		want  string
	}{
		{"missing SLO", Options{}, TuneOptions{}, "SLO"},
		{"policy pinned", Options{SLO: 0.1, Policy: "mnemot"}, TuneOptions{}, "TuneOptions.Policies"},
		{"params pinned", Options{SLO: 0.1, PolicyParams: map[string]float64{"decay": 0.5}}, TuneOptions{}, "TuneOptions.Policies"},
		{"adaptive measurement", Options{SLO: 0.1, EpochOps: 4096}, TuneOptions{}, "statically"},
		{"bad measurement opts", Options{SLO: 0.1, Runs: -1}, TuneOptions{}, "Runs"},
		{"negative budget", Options{SLO: 0.1}, TuneOptions{Budget: -1}, "Budget"},
		{"excess budget", Options{SLO: 0.1}, TuneOptions{Budget: 1 << 30}, "above the cap"},
		{"negative workers", Options{SLO: 0.1}, TuneOptions{Workers: -1}, "Workers"},
		{"unknown search policy", Options{SLO: 0.1}, TuneOptions{Policies: []string{"nope"}}, "unknown policy"},
		{"duplicate search policy", Options{SLO: 0.1}, TuneOptions{Policies: []string{"touch", "touch"}}, "listed twice"},
		{"budget below policies", Options{SLO: 0.1}, TuneOptions{Budget: 3}, "below the 8 policies"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Tune(ctx, w, tc.opts, tc.topts); err == nil {
				t.Fatalf("options %+v / %+v accepted", tc.opts, tc.topts)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// TuneWithSpec validates the recipe too.
	if _, _, err := TuneWithSpec(ctx, TuneWorkloadRecipe{Name: "no_such"}, Options{SLO: 0.1}, TuneOptions{}); err == nil {
		t.Fatal("unknown recipe accepted by TuneWithSpec")
	}
}

func TestProfileWithTieringErrors(t *testing.T) {
	w := tinyAPIWorkload(t)
	if _, err := ProfileWithTiering(w, []string{"no_such_key"}, Options{}); err == nil {
		t.Fatal("unknown tiered key accepted")
	}
	if _, err := ProfileWithTiering(w, []string{"user0", "user0"}, Options{}); err == nil {
		t.Fatal("repeated tiered key accepted")
	}
	if _, err := ProfileWithTiering(w, nil, Options{Runs: -1}); err == nil {
		t.Fatal("bad options accepted by ProfileWithTiering")
	}
}

func TestAdvisorErrors(t *testing.T) {
	if _, err := Advise(&Curve{}, 0.1); err == nil {
		t.Error("empty curve accepted by Advise")
	}
	if _, err := AdviseLatency(&Curve{}, 100); err == nil {
		t.Error("empty curve accepted by AdviseLatency")
	}
	w := tinyAPIWorkload(t)
	rep, err := Profile(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Advise(rep.Curve, -0.1); err == nil {
		t.Error("negative slowdown accepted")
	}
	if _, err := AdviseLatency(rep.Curve, 0); err == nil {
		t.Error("non-positive latency budget accepted")
	}
	if _, err := EstimateTails(rep, []int{-1}); err == nil {
		t.Error("negative sizing accepted by EstimateTails")
	}
	if _, err := EstimateTails(rep, []int{len(w.Dataset.Records) + 1}); err == nil {
		t.Error("oversized sizing accepted by EstimateTails")
	}
}

func TestWorkloadLoaderErrors(t *testing.T) {
	if _, err := WorkloadByName("no_such_workload", 1); err == nil {
		t.Error("unknown workload name accepted")
	}
	if _, err := GenerateWorkload(WorkloadSpec{Name: "bad", Keys: -1, Requests: 10}); err == nil {
		t.Error("negative key count accepted")
	}
	if _, err := LoadWorkloadCSV(strings.NewReader("not a workload")); err == nil {
		t.Error("garbage CSV accepted")
	}
	if _, err := LoadRedisMonitor(strings.NewReader("no commands here"), 64); err == nil {
		t.Error("command-free capture accepted")
	}
	if _, err := LoadRedisMonitor(strings.NewReader(`1.0 [0 x] "GET" "k"`+"\n"), 0); err == nil {
		t.Error("zero default size accepted")
	}
}

func TestCostModelErrors(t *testing.T) {
	if _, err := PriceFactorFromHardware(0, 5); err == nil {
		t.Error("zero slow price accepted")
	}
	if _, err := PriceFactorFromHardware(5, 0); err == nil {
		t.Error("zero fast price accepted")
	}
	if _, err := PriceFactorFromHardware(7, 5); err == nil {
		t.Error("slow dearer than fast accepted")
	}
}

func TestProfileMatrixRequestErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := ProfileMatrixContext(ctx, MatrixRequest{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := ProfileMatrixContext(ctx, MatrixRequest{
		Workloads: []string{"trending"},
		Engines:   []Engine{RedisLike, RedisLike},
	}); err == nil {
		t.Error("duplicate engine accepted")
	}
	if _, err := ProfileMatrixContext(ctx, MatrixRequest{
		Workloads: []string{"trending", "trending"},
	}); err == nil {
		t.Error("duplicate workload name accepted")
	}
	if _, err := ProfileMatrixContext(ctx, MatrixRequest{
		Workloads: []string{"no_such_workload"},
	}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := ProfileMatrixContext(ctx, MatrixRequest{
		Specs: []WorkloadSpec{{Name: "bad", Keys: -1, Requests: 10}},
	}); err == nil {
		t.Error("invalid spec accepted")
	}
	spec := tinyAPIWorkload(t).Spec
	if _, err := ProfileMatrixContext(ctx, MatrixRequest{
		Workloads: []string{"trending"},
		Specs:     []WorkloadSpec{func() WorkloadSpec { s := spec; s.Name = "trending"; return s }()},
	}); err == nil {
		t.Error("spec name colliding with workload name accepted")
	}
}
