package mnemo

import (
	"fmt"

	"mnemo/internal/pool"
)

// MatrixCell identifies one profiling job of a sweep and carries its
// result.
type MatrixCell struct {
	Workload string
	Engine   Engine
	Report   *Report
	Err      error
}

// MatrixRequest describes a profiling sweep: every named workload is
// profiled on every engine — the shape of the paper's Fig 8a/Fig 9
// evaluations, where 5 workloads × 3 stores are independent experiments.
type MatrixRequest struct {
	// Workloads are built-in workload names (see AllWorkloadNames), each
	// generated with the request's Seed.
	Workloads []string
	// Engines to profile; nil means all three.
	Engines []Engine
	// Options applied to every cell (Store is overridden per cell).
	Options Options
	// Parallelism bounds concurrent profiling sessions; ≤ 0 uses
	// GOMAXPROCS. Each session is independent (own deployment, own
	// noise stream), so cells parallelize perfectly.
	Parallelism int
}

// ProfileMatrix runs the sweep, fanning cells out over a bounded worker
// pool. Cells are written into an index-addressed slice, so the returned
// order — workload-name input order, then engine — is deterministic
// regardless of worker count. Every cell carries either a report or its
// error — one failed cell does not abort the sweep.
func ProfileMatrix(req MatrixRequest) ([]MatrixCell, error) {
	if len(req.Workloads) == 0 {
		return nil, fmt.Errorf("mnemo: ProfileMatrix needs at least one workload")
	}
	engines := req.Engines
	if len(engines) == 0 {
		engines = Engines()
	}

	// Generate workloads up front (cheap, and shared across engines —
	// generation is deterministic and the profile path never mutates the
	// descriptor).
	byName := make(map[string]*Workload, len(req.Workloads))
	for _, name := range req.Workloads {
		if _, dup := byName[name]; dup {
			return nil, fmt.Errorf("mnemo: workload %q listed twice", name)
		}
		w, err := WorkloadByName(name, req.Options.Seed)
		if err != nil {
			return nil, err
		}
		byName[name] = w
	}

	cells := make([]MatrixCell, 0, len(req.Workloads)*len(engines))
	for _, name := range req.Workloads {
		for _, e := range engines {
			cells = append(cells, MatrixCell{Workload: name, Engine: e})
		}
	}
	pool.Run(len(cells), req.Parallelism, func(i int) {
		cell := &cells[i]
		opts := req.Options
		opts.Store = cell.Engine
		cell.Report, cell.Err = Profile(byName[cell.Workload], opts)
	})
	return cells, nil
}
