package mnemo

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// MatrixCell identifies one profiling job of a sweep and carries its
// result.
type MatrixCell struct {
	Workload string
	Engine   Engine
	Report   *Report
	Err      error
}

// MatrixRequest describes a profiling sweep: every named workload is
// profiled on every engine — the shape of the paper's Fig 8a/Fig 9
// evaluations, where 5 workloads × 3 stores are independent experiments.
type MatrixRequest struct {
	// Workloads are built-in workload names (see AllWorkloadNames), each
	// generated with the request's Seed.
	Workloads []string
	// Engines to profile; nil means all three.
	Engines []Engine
	// Options applied to every cell (Store is overridden per cell).
	Options Options
	// Parallelism bounds concurrent profiling sessions; ≤ 0 uses
	// GOMAXPROCS. Each session is independent (own deployment, own
	// noise stream), so cells parallelize perfectly.
	Parallelism int
}

// ProfileMatrix runs the sweep, fanning cells out over a bounded worker
// pool. The returned cells are sorted by workload then engine, and every
// cell carries either a report or its error — one failed cell does not
// abort the sweep.
func ProfileMatrix(req MatrixRequest) ([]MatrixCell, error) {
	if len(req.Workloads) == 0 {
		return nil, fmt.Errorf("mnemo: ProfileMatrix needs at least one workload")
	}
	engines := req.Engines
	if len(engines) == 0 {
		engines = Engines()
	}
	workers := req.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Generate workloads up front (cheap, and shared across engines —
	// generation is deterministic and the profile path never mutates the
	// descriptor).
	byName := make(map[string]*Workload, len(req.Workloads))
	for _, name := range req.Workloads {
		if _, dup := byName[name]; dup {
			return nil, fmt.Errorf("mnemo: workload %q listed twice", name)
		}
		w, err := WorkloadByName(name, req.Options.Seed)
		if err != nil {
			return nil, err
		}
		byName[name] = w
	}

	jobs := make(chan MatrixCell)
	results := make(chan MatrixCell)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cell := range jobs {
				opts := req.Options
				opts.Store = cell.Engine
				cell.Report, cell.Err = Profile(byName[cell.Workload], opts)
				results <- cell
			}
		}()
	}
	go func() {
		for _, name := range req.Workloads {
			for _, e := range engines {
				jobs <- MatrixCell{Workload: name, Engine: e}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	cells := make([]MatrixCell, 0, len(req.Workloads)*len(engines))
	for cell := range results {
		cells = append(cells, cell)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Workload != cells[j].Workload {
			return cells[i].Workload < cells[j].Workload
		}
		return cells[i].Engine < cells[j].Engine
	})
	return cells, nil
}
