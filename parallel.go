package mnemo

import (
	"context"
	"fmt"

	"mnemo/internal/pool"
)

// MatrixCell identifies one profiling job of a sweep and carries its
// result.
type MatrixCell struct {
	Workload string
	Engine   Engine
	Report   *Report
	Err      error
}

// MatrixRequest describes a profiling sweep: every workload is profiled
// on every engine — the shape of the paper's Fig 8a/Fig 9 evaluations,
// where 5 workloads × 3 stores are independent experiments.
type MatrixRequest struct {
	// Workloads are built-in workload names (see AllWorkloadNames), each
	// generated with the request's Seed.
	Workloads []string
	// Specs are custom workload specs profiled alongside the named
	// workloads; each spec's Name labels its cells and must not collide
	// with a Workloads entry or another spec.
	Specs []WorkloadSpec
	// Engines to profile; nil means all three. Duplicates are rejected —
	// a doubled engine would silently skew any summary computed over the
	// cells.
	Engines []Engine
	// Options applied to every cell (Store is overridden per cell).
	Options Options
	// Parallelism bounds concurrent profiling sessions; ≤ 0 uses
	// GOMAXPROCS. Each session is independent (own deployment, own
	// noise stream), so cells parallelize perfectly.
	Parallelism int
}

// ProfileMatrix runs the sweep, fanning cells out over a bounded worker
// pool. Cells are written into an index-addressed slice, so the returned
// order — workload input order (names first, then specs), then engine —
// is deterministic regardless of worker count. Every cell carries either
// a report or its error — one failed cell does not abort the sweep.
func ProfileMatrix(req MatrixRequest) ([]MatrixCell, error) {
	return ProfileMatrixContext(context.Background(), req)
}

// ProfileMatrixContext is ProfileMatrix with cancellation. On
// cancellation the completed cells keep their results, every cell that
// was cut short or never started carries the context's error, and the
// error is also returned — partial sweeps are usable but unmistakable.
// A panic inside one cell's profiling session is captured as that cell's
// Err (a *pool.PanicError carrying the stack); it never tears down the
// other cells or escapes to the caller.
func ProfileMatrixContext(ctx context.Context, req MatrixRequest) ([]MatrixCell, error) {
	if len(req.Workloads)+len(req.Specs) == 0 {
		return nil, fmt.Errorf("mnemo: ProfileMatrix needs at least one workload")
	}
	if err := req.Options.validate(); err != nil {
		return nil, err
	}
	engines := req.Engines
	if len(engines) == 0 {
		engines = Engines()
	}
	seen := make(map[Engine]bool, len(engines))
	for _, e := range engines {
		if seen[e] {
			return nil, fmt.Errorf("mnemo: engine %v listed twice", e)
		}
		seen[e] = true
	}

	// Generate workloads up front (cheap, and shared across engines —
	// generation is deterministic and the profile path never mutates the
	// descriptor).
	names := make([]string, 0, len(req.Workloads)+len(req.Specs))
	byName := make(map[string]*Workload, len(req.Workloads)+len(req.Specs))
	for _, name := range req.Workloads {
		if _, dup := byName[name]; dup {
			return nil, fmt.Errorf("mnemo: workload %q listed twice", name)
		}
		w, err := WorkloadByName(name, req.Options.Seed)
		if err != nil {
			return nil, err
		}
		byName[name] = w
		names = append(names, name)
	}
	for _, spec := range req.Specs {
		if _, dup := byName[spec.Name]; dup {
			return nil, fmt.Errorf("mnemo: workload %q listed twice", spec.Name)
		}
		w, err := GenerateWorkload(spec)
		if err != nil {
			return nil, err
		}
		byName[spec.Name] = w
		names = append(names, spec.Name)
	}

	cells := make([]MatrixCell, 0, len(names)*len(engines))
	for _, name := range names {
		for _, e := range engines {
			cells = append(cells, MatrixCell{Workload: name, Engine: e})
		}
	}
	// Matrix cells and every fan-out nested inside a cell (baselines ×
	// repetitions × shards) share one worker budget.
	ctx = pool.EnsureBudget(ctx)
	sweepErr := pool.RunCtx(ctx, len(cells), req.Parallelism, func(i int) {
		cell := &cells[i]
		opts := req.Options
		opts.Store = cell.Engine
		if perr := pool.Guard(i, func() {
			cell.Report, cell.Err = ProfileContext(ctx, byName[cell.Workload], opts)
		}); perr != nil {
			cell.Report, cell.Err = nil, perr
		}
	})
	if sweepErr != nil {
		// Cells the pool never ran (or whose results were lost to the
		// abort) still must explain themselves.
		for i := range cells {
			if cells[i].Report == nil && cells[i].Err == nil {
				cells[i].Err = sweepErr
			}
		}
		return cells, sweepErr
	}
	return cells, nil
}
