package mnemo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"regexp"
	"runtime"
	"testing"
	"time"

	"mnemo/internal/pool"
)

// shardReasonRE is the shape every shard-attributed degraded reason
// must take: the baseline it came from, the dead shard's index, and the
// underlying error.
var shardReasonRE = regexp.MustCompile(`^(FastMem|SlowMem): shard \d+: .+`)

// chaosShardedOptions derives one seeded sharded fault schedule: the
// cluster size cycles through {2,4,8}, every fault class (legacy and
// shard-granular) draws a probability, and the remediation knobs —
// per-shard retries, a fault budget sized to the cluster, hedging — are
// themselves randomized so the sweep covers their whole cross-product.
func chaosShardedOptions(i int, rng *rand.Rand) Options {
	shards := []int{2, 4, 8}[i%3]
	opts := Options{
		Seed:   int64(i) + 1,
		Runs:   1 + rng.Intn(2),
		Shards: shards,
		Fault: FaultSpec{
			Seed:           int64(i)*13 + 5,
			FailProb:       rng.Float64() * 0.3,
			StallProb:      rng.Float64() * 0.2,
			OutlierProb:    rng.Float64() * 0.3,
			CrashProb:      rng.Float64() * 0.4,
			StragglerProb:  rng.Float64() * 0.4,
			StallWindowOps: 50, // inside every shard's slice of the tiny trace
		},
		Retries:          rng.Intn(2),
		ShardRetries:     rng.Intn(3),
		ShardFaultBudget: rng.Intn(shards),
	}
	if rng.Intn(2) == 0 {
		opts.RunTimeout = 2 * Second // cuts injected stalls
	}
	if rng.Intn(2) == 0 {
		opts.HedgeFactor = 1 + rng.Float64()*2
	}
	if opts.ShardRetries == 0 && opts.ShardFaultBudget == 0 && opts.HedgeFactor == 0 {
		// Every schedule exercises the fault-domain path; all three knobs
		// zero would fall back to the legacy all-or-nothing behavior.
		opts.ShardRetries = 1
	}
	return opts
}

// TestChaosShardedSchedules drives sharded profiles through 200 seeded
// fault schedules mixing every fault class with randomized remediation
// knobs. The contract: each schedule ends with a report or a typed
// error, degraded reports carry correctly-shaped shard-attributed
// reasons and consistent counts, the whole remediated execution is
// bit-identical when repeated under the same seed, and no goroutines
// leak. (The TestChaos name prefix keeps it inside the nightly
// `-run 'TestChaos'` -race sweep.)
func TestChaosShardedSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded chaos sweep is a long test")
	}
	const schedules = 200

	warmup := runtime.NumGoroutine()

	degraded, failed := 0, 0
	for i := 0; i < schedules; i++ {
		rng := rand.New(rand.NewSource(int64(i)*104729 + 3))
		opts := chaosShardedOptions(i, rng)
		w, err := GenerateWorkload(chaosSpec(fmt.Sprintf("chaos_sharded_%d", i), int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ProfileContext(context.Background(), w, opts)
		if (rep == nil) == (err == nil) {
			t.Fatalf("schedule %d: report %v, err %v — want exactly one", i, rep, err)
		}
		if err != nil {
			failed++
			var pe *pool.PanicError
			if errors.As(err, &pe) {
				t.Fatalf("schedule %d: panic captured: %v\n%s", i, pe.Value, pe.Stack)
			}
			if !expectedChaosErr(err) {
				t.Fatalf("schedule %d: untyped error %v", i, err)
			}
		} else {
			if rep.Degraded != (len(rep.DegradedReasons) > 0) {
				t.Fatalf("schedule %d: Degraded=%t with %d reasons (strict mode: the only "+
					"degradation source is a partial shard merge)",
					i, rep.Degraded, len(rep.DegradedReasons))
			}
			for _, reason := range rep.DegradedReasons {
				if !shardReasonRE.MatchString(reason) {
					t.Fatalf("schedule %d: malformed degraded reason %q", i, reason)
				}
			}
			if fails := rep.Baselines.Fast.ShardsFailed + rep.Baselines.Slow.ShardsFailed; fails != len(rep.DegradedReasons) {
				t.Fatalf("schedule %d: %d shard failures but %d reasons",
					i, fails, len(rep.DegradedReasons))
			}
			if rep.Degraded {
				degraded++
			}
		}

		// Determinism: the full remediated pipeline — retries, hedges,
		// partial merges — must reproduce bit-exactly under the same seed.
		rep2, err2 := ProfileContext(context.Background(), w, opts)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("schedule %d: outcome flipped on rerun: %v vs %v", i, err, err2)
		}
		if err != nil {
			if err.Error() != err2.Error() {
				t.Fatalf("schedule %d: error not deterministic:\nfirst: %v\nagain: %v", i, err, err2)
			}
		} else if !reflect.DeepEqual(rep, rep2) {
			t.Fatalf("schedule %d: report not deterministic:\nfirst: %+v\nagain: %+v", i, rep, rep2)
		}
	}
	// The sweep must actually exercise the degraded and failed paths —
	// a silent all-healthy run would pin nothing.
	if degraded == 0 {
		t.Error("no schedule produced a degraded partial result")
	}
	if failed == 0 {
		t.Error("no schedule exhausted its fault budget")
	}
	t.Logf("%d schedules: %d degraded, %d failed", schedules, degraded, failed)

	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= warmup+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after %d schedules",
				warmup, runtime.NumGoroutine(), schedules)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosShardedCancellationPrompt cancels a hedged, fault-injected
// sharded profile mid-flight: the call must return the context error
// quickly and — the hedge-loser leak regression — every per-shard and
// hedge goroutine must drain, leaving no leaks behind.
func TestChaosShardedCancellationPrompt(t *testing.T) {
	warmup := runtime.NumGoroutine()
	cut := 0
	for i := 0; i < 4; i++ {
		w, err := GenerateWorkload(WorkloadSpec{
			Name: fmt.Sprintf("cancel_sharded_%d", i), Keys: 2000, Requests: 100_000,
			Dist:      DistSpec{Kind: Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
			ReadRatio: 0.9, Sizes: SizeThumbnail, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		rep, err := ProfileContext(ctx, w, Options{
			Seed: int64(i) + 1, Runs: 4, Shards: 4,
			Fault:        FaultSpec{Seed: int64(i)*7 + 3, StragglerProb: 0.5, CrashProb: 0.2, StallWindowOps: 5000},
			ShardRetries: 2, ShardFaultBudget: 3, HedgeFactor: 1,
		})
		elapsed := time.Since(start)
		cancel()
		if elapsed > 5*time.Second {
			t.Fatalf("spec %d: cancellation took %v", i, elapsed)
		}
		switch {
		case err == nil && rep != nil:
			// Finished before the cancel landed; nothing to assert.
		case errors.Is(err, context.Canceled):
			cut++
		default:
			t.Fatalf("spec %d: got report %v, err %v after cancellation", i, rep, err)
		}
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= warmup+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled hedged profiles: %d before, %d after",
				warmup, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cut == 0 {
		t.Skip("profiles finished before cancellation; nothing to assert")
	}
	t.Logf("cancelled %d of 4 hedged sharded profiles", cut)
}
