package mnemo

import (
	"testing"
)

func TestProfileMatrixSweep(t *testing.T) {
	// Quick sweep: 2 workloads × 2 engines at reduced scale would need
	// custom specs, so use the YCSB 1KB workloads (fast to profile even
	// at full key count? no — use small custom via facade is not
	// supported by name). Instead run 1 workload × 3 engines.
	cells, err := ProfileMatrix(MatrixRequest{
		Workloads:   []string{"ycsb_c"},
		Options:     Options{Seed: 201, SLO: 0.10},
		Parallelism: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(cells))
	}
	for _, c := range cells {
		if c.Err != nil {
			t.Fatalf("%s/%v: %v", c.Workload, c.Engine, c.Err)
		}
		if c.Report == nil || c.Report.Advice == nil {
			t.Fatalf("%s/%v: missing report", c.Workload, c.Engine)
		}
	}
	// Sorted by workload then engine.
	for i := 1; i < len(cells); i++ {
		if cells[i-1].Engine >= cells[i].Engine {
			t.Fatal("cells not sorted by engine")
		}
	}
}

func TestProfileMatrixMatchesSequential(t *testing.T) {
	// Parallel execution must be observationally identical to sequential
	// profiling (independent deployments, deterministic seeds).
	par, err := ProfileMatrix(MatrixRequest{
		Workloads:   []string{"ycsb_b"},
		Engines:     []Engine{RedisLike},
		Options:     Options{Seed: 202, SLO: 0.10},
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := WorkloadByName("ycsb_b", 202)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Profile(w, Options{Store: RedisLike, Seed: 202, SLO: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if par[0].Report.Baselines.Fast.Runtime != seq.Baselines.Fast.Runtime {
		t.Fatal("parallel run diverged from sequential")
	}
	if par[0].Report.Advice.Point.KeysInFast != seq.Advice.Point.KeysInFast {
		t.Fatal("parallel advice diverged")
	}
}

func TestProfileMatrixErrors(t *testing.T) {
	if _, err := ProfileMatrix(MatrixRequest{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := ProfileMatrix(MatrixRequest{Workloads: []string{"bogus"}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := ProfileMatrix(MatrixRequest{Workloads: []string{"ycsb_c", "ycsb_c"}}); err == nil {
		t.Error("duplicate workload accepted")
	}
}

func TestProfileMatrixRejectsBadOptionsUpFront(t *testing.T) {
	// Options are validated before any measurement: a bad value fails the
	// whole sweep immediately instead of burning a cell per engine.
	_, err := ProfileMatrix(MatrixRequest{
		Workloads: []string{"ycsb_c"},
		Engines:   []Engine{RedisLike},
		Options:   Options{Seed: 203, PriceFactor: 5}, // invalid p
	})
	if err == nil {
		t.Fatal("invalid PriceFactor accepted")
	}
}

func TestProfileMatrixCellErrorsDoNotAbort(t *testing.T) {
	// A fault that kills every measurement run fails each cell
	// individually but the sweep itself returns.
	cells, err := ProfileMatrix(MatrixRequest{
		Workloads: []string{"ycsb_c"},
		Engines:   []Engine{RedisLike},
		Options:   Options{Seed: 203, Fault: FaultSpec{Seed: 1, FailProb: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Err == nil {
		t.Fatal("cell error not surfaced")
	}
}
