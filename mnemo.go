// Package mnemo is the public API of the Mnemo reproduction — a memory
// capacity sizing and data tiering consultant for key-value stores on
// hybrid memory systems (Doudali & Gavrilovska, IPDPS 2019).
//
// Mnemo answers one question: given a key-value store workload and a
// hybrid memory system with a fast tier (DRAM) and a cheaper, slower tier
// (NVM), what is the minimum FastMem capacity that keeps performance
// within a target SLO — and how much memory cost does that save?
//
// The pipeline (see internal/core for the engines):
//
//	w, _ := mnemo.WorkloadByName("trending", 42)
//	rep, _ := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, SLO: 0.10})
//	fmt.Println(rep.Advice.Point.CostFactor) // e.g. 0.36 of DRAM-only cost
//	rep.Curve.WriteCSV(os.Stdout)            // the paper's 3-column output
//
// Because commercial hybrid-memory hardware and the paper's store
// binaries are not assumed available, the "physical system" behind
// Profile is an emulated testbed with the paper's Table I memory
// parameters and three from-scratch store engines calibrated to the
// sensitivities the paper measures for Redis, Memcached and
// DynamoDB-local. See DESIGN.md for the substitution map.
package mnemo

import (
	"context"
	"fmt"
	"io"

	"mnemo/internal/client"
	"mnemo/internal/core"
	"mnemo/internal/costmodel"
	"mnemo/internal/obs"
	"mnemo/internal/registry"
	"mnemo/internal/server"
	"mnemo/internal/shard"
	"mnemo/internal/simclock"
	"mnemo/internal/trace"
	"mnemo/internal/ycsb"
)

// Re-exported store engines.
const (
	// RedisLike is the single-threaded chained-dict engine (≈1.4×
	// SlowMem sensitivity on thumbnail workloads).
	RedisLike = server.RedisLike
	// MemcachedLike is the slab/LRU engine with worker-thread memory
	// parallelism (barely SlowMem-sensitive).
	MemcachedLike = server.MemcachedLike
	// DynamoLike is the B-tree engine with request-path amplification
	// (severely SlowMem-sensitive).
	DynamoLike = server.DynamoLike
)

// Engine selects a key-value store engine.
type Engine = server.Engine

// Workload is a dataset plus request trace — Mnemo's workload descriptor.
type Workload = ycsb.Workload

// WorkloadSpec parameterizes workload generation.
type WorkloadSpec = ycsb.Spec

// DistSpec parameterizes a request distribution within a WorkloadSpec.
type DistSpec = ycsb.DistSpec

// DistKind selects a request distribution (Fig 3).
type DistKind = ycsb.DistKind

// Request distributions. HotSetDrift and PhaseChange are the
// non-stationary drift distributions adaptive tiering is evaluated on
// (DESIGN.md §15).
const (
	Uniform          = ycsb.Uniform
	Zipfian          = ycsb.Zipfian
	ScrambledZipfian = ycsb.ScrambledZipfian
	Hotspot          = ycsb.Hotspot
	Latest           = ycsb.Latest
	HotSetDrift      = ycsb.HotSetDrift
	PhaseChange      = ycsb.PhaseChange
)

// SizeKind selects a record-size distribution (Fig 4).
type SizeKind = ycsb.SizeKind

// Record-size distributions.
const (
	SizeThumbnail       = ycsb.SizeThumbnail
	SizeTextPost        = ycsb.SizeTextPost
	SizePhotoCaption    = ycsb.SizePhotoCaption
	SizeTrendingPreview = ycsb.SizeTrendingPreview
	SizeFixed1KB        = ycsb.SizeFixed1KB
	SizeFixed10KB       = ycsb.SizeFixed10KB
	SizeFixed100KB      = ycsb.SizeFixed100KB
)

// Report is the output of a profiling session: measured baselines, the
// key ordering, the cost/performance curve and (if an SLO was set) the
// advised sizing.
type Report = core.Report

// Curve is the estimated cost/performance trade-off (Fig 5's blue line).
type Curve = core.Curve

// CurvePoint is one sizing of the curve.
type CurvePoint = core.CurvePoint

// Advice is the advisor's minimum-cost SLO-satisfying sizing.
type Advice = core.Advice

// Ordering is a FastMem-priority key ordering.
type Ordering = core.Ordering

// DefaultPriceFactor is the paper's SlowMem:FastMem price ratio p = 0.2.
const DefaultPriceFactor = costmodel.DefaultPriceFactor

// Duration is simulated time — the unit of Options.RunTimeout and of
// every runtime a Report carries.
type Duration = simclock.Duration

// Second is one second of simulated time.
const Second = simclock.Second

// FaultSpec configures deterministic fault injection into the emulated
// testbed: runs can die outright, stall until a timeout cuts them off,
// or complete with inflated latencies. The zero value injects nothing
// and leaves results bit-identical. See Options.Fault.
type FaultSpec = server.FaultSpec

// FaultError is the typed error of an injected run failure; detect it
// with errors.As to distinguish scheduled chaos from real bugs.
type FaultError = server.FaultError

// ErrRunTimeout marks a run cut off by Options.RunTimeout; detect with
// errors.Is.
var ErrRunTimeout = client.ErrRunTimeout

// RunStats is one measured execution's statistics, including the
// epoch-migration telemetry of adaptive runs (Epochs, MovesApplied,
// MigratedBytes, MigrationNs, EpochTraffic).
type RunStats = client.RunStats

// EpochTraffic is one epoch boundary's migration ledger.
type EpochTraffic = client.EpochTraffic

// Sink collects a profiling session's observability stream: counters,
// gauges and stage-latency histograms in a metrics registry, plus an
// ordered run journal of lifecycle events (measurements, retries,
// faults, timeouts, cache hits, placements). A nil *Sink — the zero
// state of Options.Obs — records nothing and adds no measurable cost;
// simulation results are bit-identical with and without one attached.
//
// Read the collected state via Sink.Registry (WritePrometheus,
// Snapshot) and Sink.Journal (Events).
type Sink = obs.Sink

// NewSink builds a live observability sink with a fresh metrics
// registry and a bounded run journal.
func NewSink() *Sink { return obs.NewSink() }

// Options configures a profiling session. The zero value plus a Store is
// valid: one run per baseline, p = 0.2, the Table I machine, and default
// measurement noise.
type Options struct {
	// Store selects the engine to profile (RedisLike by default).
	Store Engine
	// Seed makes the session reproducible.
	Seed int64
	// Runs is how many times each baseline execution is repeated and
	// averaged (default 1).
	Runs int
	// PriceFactor is the relative per-byte price of SlowMem (default
	// 0.2, the paper's estimate).
	PriceFactor float64
	// SLO, when positive, asks the advisor for the cheapest sizing whose
	// estimated slowdown from FastMem-only stays within it (the paper
	// uses 0.10).
	SLO float64
	// Policy names the tiering policy that orders keys for FastMem: any
	// name from Policies(), e.g. "touch" (stand-alone Mnemo, the
	// default), "mnemot", "tahoe", "freqdecay", "pagesample" or
	// "knapsack". Empty means "touch".
	Policy string
	// PolicyParams tunes the named Policy: a (possibly partial) parameter
	// vector over its registered parameter space — e.g.
	// {"decay": 0.25} for "freqdecay" or {"anchor": 0.17} for
	// "knapsack". Params absent from the vector keep their defaults;
	// unknown names, out-of-bounds values and vectors on policies
	// without a tunable surface are rejected. See Policies() for each
	// policy's space, and Tune to search it automatically.
	PolicyParams map[string]float64
	// UseMnemoT is the pre-registry switch to MnemoT's weighted tiering
	// ordering.
	//
	// Deprecated: set Policy to "mnemot" instead. UseMnemoT remains an
	// alias for exactly that; combining it with a conflicting Policy is
	// an error.
	UseMnemoT bool
	// NoiseSigma overrides the per-request measurement noise; negative
	// disables noise entirely.
	NoiseSigma float64
	// SizeAwareEstimate enables the per-size-class estimate extension —
	// a reproduction improvement over the paper's global-average model
	// that matters for MnemoT orderings on mixed record sizes.
	SizeAwareEstimate bool
	// Fault injects deterministic faults into the measurement runs
	// (crashes, stalls, latency outliers); the zero value injects
	// nothing. Pair it with RunTimeout and the resilience knobs below.
	Fault FaultSpec
	// RunTimeout bounds each measurement run in simulated time; a run
	// whose clock exceeds it (e.g. an injected stall) is aborted with
	// ErrRunTimeout. 0 disables the bound.
	RunTimeout Duration
	// Retries is how many times a failed measurement run is re-attempted
	// (with a re-rolled seed and capped exponential backoff) before the
	// repetition counts as lost.
	Retries int
	// MinRuns, when ≥ 1, lets baselines degrade gracefully: an aggregate
	// is reported from the surviving repetitions (flagged via
	// Report.Degraded) as long as at least MinRuns survive. 0 keeps the
	// strict default — any lost repetition fails the profile.
	MinRuns int
	// OutlierMAD, when > 0, rejects surviving runs whose runtime strays
	// from the median by more than OutlierMAD× the median absolute
	// deviation (3.5 is conventional). Requires MinRuns ≥ 1.
	OutlierMAD float64
	// Obs, when non-nil, receives the session's observability stream —
	// metrics, stage spans and the run journal (see NewSink). nil keeps
	// profiling completely uninstrumented.
	Obs *Sink
	// DisableBatchReplay forces every measurement run through the per-op
	// replay path instead of the batched table-driven kernel. The two
	// paths are bit-identical, so this is a debugging/benchmarking knob,
	// not a correctness one.
	DisableBatchReplay bool
	// Shards replays every measurement across a consistent-hash cluster
	// of N deployments (multi-core replay with a deterministic merge;
	// DESIGN.md §13). 0 keeps the single deployment; Shards=1 routes
	// through the cluster machinery and is bit-identical to 0.
	Shards int
	// VirtualNodes is the consistent-hash ring points per shard
	// (0 = the shard package default of 64).
	VirtualNodes int
	// ShardRetries, with Shards ≥ 2, retries a shard that hits an
	// injected fail, crash or timeout fault in place (rewinding just
	// that member under a re-rolled seed) up to N extra attempts before
	// the shard counts as dead.
	ShardRetries int
	// ShardFaultBudget, with Shards ≥ 2, is how many shards may die
	// (after exhausting ShardRetries) before a measurement run fails:
	// within budget the run degrades to a partial merge of the surviving
	// shards, flagged via Report.Degraded with shard-attributed reasons.
	ShardFaultBudget int
	// HedgeFactor, with Shards ≥ 2, speculatively re-executes straggler
	// shards: any surviving shard whose simulated runtime exceeds
	// HedgeFactor× the median is re-run and the faster execution wins.
	// 0 disables hedging; otherwise must be ≥ 1.
	HedgeFactor float64
	// EpochOps enables adaptive (epoch-based online migration) replay on
	// measured executions: the trace is served in EpochOps-request
	// epochs and the policy may migrate records between tiers at each
	// boundary (DESIGN.md §15). Requires an adaptive Policy (one
	// implementing EpochPolicy, e.g. "adaptive-freq" or
	// "adaptive-mnemot"). 0 — the default — keeps the static pipeline
	// bit-identical. Baselines and validation sweeps always measure
	// statically regardless.
	EpochOps int
	// MigrationCostPerByte is the simulated-time charge, in nanoseconds
	// per payload byte, for records migrated between tiers mid-run.
	// Only meaningful with EpochOps ≥ 1; 0 makes migration free.
	MigrationCostPerByte float64
	// MigrationBudget caps the payload bytes migrated per epoch
	// boundary; excess moves are dropped. Only meaningful with
	// EpochOps ≥ 1; 0 means unlimited.
	MigrationBudget int64
}

// validate rejects malformed options with descriptive errors before any
// measurement is attempted.
func (o Options) validate() error {
	if _, ok := EngineByName(o.Store.String()); !ok {
		return fmt.Errorf("mnemo: unknown store engine %v", o.Store)
	}
	if o.Runs < 0 {
		return fmt.Errorf("mnemo: Runs %d must be non-negative (0 means the default of 1)", o.Runs)
	}
	if o.PriceFactor < 0 || o.PriceFactor > 1 {
		return fmt.Errorf("mnemo: PriceFactor %v outside (0,1] (0 means the paper's %v)",
			o.PriceFactor, DefaultPriceFactor)
	}
	if o.SLO < 0 {
		return fmt.Errorf("mnemo: SLO %v must be non-negative (0 disables the advisor)", o.SLO)
	}
	if _, err := o.policy(); err != nil {
		return err
	}
	if err := o.Fault.Validate(); err != nil {
		return fmt.Errorf("mnemo: %w", err)
	}
	if o.RunTimeout < 0 {
		return fmt.Errorf("mnemo: RunTimeout %v must be non-negative (0 disables it)", o.RunTimeout)
	}
	if o.Shards < 0 || o.Shards > shard.MaxShards {
		return fmt.Errorf("mnemo: Shards %d outside [0,%d] (0 means a single deployment)",
			o.Shards, shard.MaxShards)
	}
	if o.VirtualNodes < 0 {
		return fmt.Errorf("mnemo: VirtualNodes %d must be non-negative (0 means the default)", o.VirtualNodes)
	}
	if o.Retries < 0 {
		return fmt.Errorf("mnemo: Retries %d must be non-negative", o.Retries)
	}
	if o.MinRuns < 0 {
		return fmt.Errorf("mnemo: MinRuns %d must be non-negative (0 means strict)", o.MinRuns)
	}
	if o.OutlierMAD < 0 {
		return fmt.Errorf("mnemo: OutlierMAD %v must be non-negative", o.OutlierMAD)
	}
	if o.OutlierMAD > 0 && o.MinRuns == 0 {
		return fmt.Errorf("mnemo: OutlierMAD %v requires MinRuns ≥ 1 (strict mode cannot drop runs)", o.OutlierMAD)
	}
	if o.ShardRetries < 0 {
		return fmt.Errorf("mnemo: ShardRetries %d must be non-negative", o.ShardRetries)
	}
	if o.ShardFaultBudget < 0 {
		return fmt.Errorf("mnemo: ShardFaultBudget %d must be non-negative", o.ShardFaultBudget)
	}
	if o.HedgeFactor != 0 && o.HedgeFactor < 1 {
		return fmt.Errorf("mnemo: HedgeFactor %v must be 0 (disabled) or ≥ 1", o.HedgeFactor)
	}
	if (o.ShardRetries > 0 || o.ShardFaultBudget > 0 || o.HedgeFactor > 0) && o.Shards < 2 {
		return fmt.Errorf("mnemo: shard fault-domain knobs (ShardRetries/ShardFaultBudget/HedgeFactor) require Shards ≥ 2, got Shards %d", o.Shards)
	}
	if o.EpochOps < 0 {
		return fmt.Errorf("mnemo: EpochOps %d must be non-negative (0 disables adaptive replay)", o.EpochOps)
	}
	if o.MigrationCostPerByte < 0 {
		return fmt.Errorf("mnemo: MigrationCostPerByte %v ns/byte must be non-negative", o.MigrationCostPerByte)
	}
	if o.MigrationBudget < 0 {
		return fmt.Errorf("mnemo: MigrationBudget %d bytes must be non-negative (0 means unlimited)", o.MigrationBudget)
	}
	if (o.MigrationCostPerByte > 0 || o.MigrationBudget > 0) && o.EpochOps == 0 {
		return fmt.Errorf("mnemo: migration knobs (MigrationCostPerByte/MigrationBudget) require EpochOps ≥ 1, got EpochOps 0")
	}
	if o.EpochOps > 0 {
		pol, err := o.policy()
		if err != nil {
			return err
		}
		if _, ok := core.AsEpochPolicy(pol); !ok {
			return fmt.Errorf("mnemo: EpochOps %d requires an adaptive policy (e.g. \"adaptive-freq\", \"adaptive-mnemot\"), but policy %q is static-only", o.EpochOps, pol.Name())
		}
	}
	return nil
}

// policy resolves the options' tiering policy: Policy by name through
// the registry, the deprecated UseMnemoT alias, or the "touch" default.
// Validation uses this uncounted form; resolvePolicy is the counting
// variant the profiling entry points call.
func (o Options) policy() (core.TieringPolicy, error) {
	return o.resolvePolicy(nil)
}

// resolvePolicy is policy with the resolution counted against the sink
// (mnemo_registry_policy_resolutions_total{policy=…}).
func (o Options) resolvePolicy(sink *Sink) (core.TieringPolicy, error) {
	name := o.Policy
	if o.UseMnemoT {
		if name != "" && name != "mnemot" {
			return nil, fmt.Errorf("mnemo: UseMnemoT conflicts with Policy %q", name)
		}
		name = "mnemot"
	}
	if name == "" {
		name = "touch"
	}
	var (
		p   core.TieringPolicy
		err error
	)
	if len(o.PolicyParams) > 0 {
		p, err = registry.NewParamsObs(name, o.Seed, o.PolicyParams, sink)
	} else {
		p, err = registry.NewObs(name, o.Seed, sink)
	}
	if err != nil {
		return nil, fmt.Errorf("mnemo: %w", err)
	}
	return p, nil
}

func (o Options) coreConfig() (core.Config, error) {
	if err := o.validate(); err != nil {
		return core.Config{}, err
	}
	cfg := core.DefaultConfig(o.Store, o.Seed)
	if o.Runs > 0 {
		cfg.Runs = o.Runs
	}
	if o.PriceFactor != 0 {
		cfg.PriceFactor = o.PriceFactor
	}
	if o.NoiseSigma > 0 {
		cfg.Server.NoiseSigma = o.NoiseSigma
	} else if o.NoiseSigma < 0 {
		cfg.Server.NoiseSigma = 0
	}
	cfg.SizeAwareEstimate = o.SizeAwareEstimate
	cfg.Server.Fault = o.Fault
	cfg.Server.RunTimeout = o.RunTimeout
	cfg.Server.Obs = o.Obs
	cfg.Server.DisableBatchReplay = o.DisableBatchReplay
	cfg.Server.Shards = o.Shards
	cfg.Server.VirtualNodes = o.VirtualNodes
	cfg.Server.MigrationCostPerByte = o.MigrationCostPerByte
	cfg.Server.MigrationBudget = o.MigrationBudget
	if o.EpochOps > 0 {
		// validate() established the policy resolves and is adaptive.
		pol, err := o.policy()
		if err != nil {
			return core.Config{}, err
		}
		ep, _ := core.AsEpochPolicy(pol)
		cfg.Server.Adaptive = ep
		cfg.Server.EpochOps = o.EpochOps
	}
	cfg.Resilience = client.Policy{
		Retries:          o.Retries,
		MinRuns:          o.MinRuns,
		OutlierMAD:       o.OutlierMAD,
		ShardRetries:     o.ShardRetries,
		ShardFaultBudget: o.ShardFaultBudget,
		HedgeFactor:      o.HedgeFactor,
	}
	return cfg, nil
}

// Profile runs the full Mnemo pipeline on the workload: real baseline
// executions, pattern analysis, the analytical estimate curve, and (when
// Options.SLO > 0) the advised sweet spot.
func Profile(w *Workload, opts Options) (*Report, error) {
	return ProfileContext(context.Background(), w, opts)
}

// ProfileContext is Profile with cancellation: a cancelled or expired
// context aborts the baseline sweeps mid-run and returns the context's
// error. Since the testbed advances simulated time, cancellation takes
// effect within microseconds of wall time.
func ProfileContext(ctx context.Context, w *Workload, opts Options) (*Report, error) {
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	if w != nil && w.Stream != nil && opts.EpochOps > 0 {
		return nil, fmt.Errorf("mnemo: EpochOps (adaptive replay) does not support streamed traces; materialize the workload or set EpochOps to 0")
	}
	pol, err := opts.resolvePolicy(opts.Obs)
	if err != nil {
		return nil, err
	}
	return core.Profile(ctx, cfg, w, pol, opts.SLO)
}

// ProfileWithTiering runs the pipeline following an external tiering
// solution's key ordering (deployment mode of Fig 2b): tieredKeys lists
// the keys an existing tiering tool would place in DRAM, in priority
// order.
func ProfileWithTiering(w *Workload, tieredKeys []string, opts Options) (*Report, error) {
	return ProfileWithTieringContext(context.Background(), w, tieredKeys, opts)
}

// ProfileWithTieringContext is ProfileWithTiering with cancellation.
func ProfileWithTieringContext(ctx context.Context, w *Workload, tieredKeys []string, opts Options) (*Report, error) {
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	ord, err := core.ExternalOrdering(w, tieredKeys)
	if err != nil {
		return nil, err
	}
	return core.ProfileWithOrdering(ctx, cfg, w, ord, opts.SLO)
}

// AdaptiveComparison pairs a static and an adaptive measured execution
// of the same placement on the same workload: the adaptive run migrates
// records at every EpochOps boundary with copy time charged on the
// simulated clock, the static run keeps the initial placement.
type AdaptiveComparison struct {
	Static   RunStats
	Adaptive RunStats
}

// RuntimeGain is the adaptive run's relative runtime win over the
// static run (positive = adaptive faster, migration cost included).
func (c AdaptiveComparison) RuntimeGain() float64 {
	if c.Adaptive.Runtime == 0 {
		return 0
	}
	return float64(c.Static.Runtime)/float64(c.Adaptive.Runtime) - 1
}

// MeasureAdaptive executes the report's advised placement twice — once
// statically, once with the configured adaptive policy migrating at
// epoch boundaries — and returns both measurements. It requires
// Options.EpochOps ≥ 1 with an adaptive Policy, and a report carrying
// advice (Options.SLO > 0). See DESIGN.md §15.
func MeasureAdaptive(ctx context.Context, w *Workload, rep *Report, opts Options) (*AdaptiveComparison, error) {
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	if cfg.Server.Adaptive == nil || cfg.Server.EpochOps <= 0 {
		return nil, fmt.Errorf("mnemo: MeasureAdaptive requires EpochOps ≥ 1 and an adaptive policy, got EpochOps %d with policy %q", opts.EpochOps, opts.Policy)
	}
	if rep.Advice == nil {
		return nil, fmt.Errorf("mnemo: MeasureAdaptive requires a report with advice (set Options.SLO)")
	}
	var pe core.PlacementEngine
	placement, err := pe.PlacementFor(rep.Ordering, rep.Advice.Point)
	if err != nil {
		return nil, err
	}
	staticCfg := cfg.Server
	staticCfg.Adaptive, staticCfg.EpochOps = nil, 0
	st, err := client.ExecuteMeanCtx(ctx, staticCfg, w, placement, cfg.Runs, 0, cfg.Resilience)
	if err != nil {
		return nil, fmt.Errorf("mnemo: static measured run: %w", err)
	}
	ad, err := client.ExecuteMeanCtx(ctx, cfg.Server, w, placement, cfg.Runs, 0, cfg.Resilience)
	if err != nil {
		return nil, fmt.Errorf("mnemo: adaptive measured run: %w", err)
	}
	return &AdaptiveComparison{Static: st, Adaptive: ad}, nil
}

// TieringPolicy orders a workload's keys by FastMem priority — the seam
// every orderer (built-in or user-supplied) plugs into. Implementations
// must return an ordering covering each workload key exactly once.
type TieringPolicy = core.TieringPolicy

// Session is the staged profiling pipeline (Measure → Analyze →
// Estimate → Place) with cached, individually re-runnable artifacts:
// baselines are measured once per session however many policies are
// profiled, orderings and curves are cached per policy, and Advise
// re-reads a cached curve without touching the testbed. Construct with
// NewSession.
type Session = core.Session

// NewSession opens a staged profiling session on the workload. Use
// Session.Compare to profile several policies against one baseline
// measurement, or drive the stages individually.
func NewSession(w *Workload, opts Options) (*Session, error) {
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	return core.NewSession(cfg, w)
}

// PolicyInfo describes one registered tiering policy, including its
// tunable parameter space (empty for fixed policies).
type PolicyInfo struct {
	Name        string
	Description string
	Params      []ParamInfo
}

// ParamInfo describes one tunable parameter of a policy: inclusive
// bounds, the default the plain policy uses, and the scale a search
// should explore it on.
type ParamInfo struct {
	Name        string
	Min, Max    float64
	Default     float64
	Integer     bool
	Log         bool
	Description string
}

// Policies lists the registered tiering policies, sorted by name.
func Policies() []PolicyInfo {
	entries := registry.Entries()
	out := make([]PolicyInfo, len(entries))
	for i, e := range entries {
		info := PolicyInfo{Name: e.Name, Description: e.Description}
		for _, p := range e.Params {
			info.Params = append(info.Params, ParamInfo{
				Name: p.Name, Min: p.Min, Max: p.Max, Default: p.Default,
				Integer: p.Integer, Log: p.Log, Description: p.Description,
			})
		}
		out[i] = info
	}
	return out
}

// PolicyByName constructs a registered tiering policy ("standalone" is
// accepted as an alias for "touch"). The seed feeds policies with
// internal randomness, e.g. the page-sampling profiler.
func PolicyByName(name string, seed int64) (TieringPolicy, error) {
	p, err := registry.New(name, seed)
	if err != nil {
		return nil, fmt.Errorf("mnemo: %w", err)
	}
	return p, nil
}

// ExternalPolicy wraps an existing tiering solution's key priority list
// as a policy (deployment mode of Fig 2b), for use with Session.Compare
// alongside registered policies.
func ExternalPolicy(tieredKeys []string) TieringPolicy { return core.External(tieredKeys) }

// Advise re-runs the advisor on an existing curve with a different SLO,
// without re-profiling.
func Advise(c *Curve, maxSlowdown float64) (Advice, error) {
	return core.Advise(c, maxSlowdown)
}

// AdviseLatency finds the cheapest sizing whose estimated average request
// latency stays within an absolute budget (nanoseconds) — the way
// client-facing SLAs are usually written. Advice.Satisfiable is false
// when even all-FastMem misses the budget.
func AdviseLatency(c *Curve, maxAvgLatencyNs float64) (Advice, error) {
	return core.AdviseLatency(c, maxAvgLatencyNs)
}

// TailPoint is a predicted latency-percentile triple for one sizing.
type TailPoint = core.TailPoint

// EstimateTails predicts latency percentiles (p50/p95/p99) for the
// sizings with the given numbers of keys in FastMem, using the report's
// baseline latency histograms — the tail-estimation extension the
// published model does not attempt.
func EstimateTails(rep *Report, keysInFast []int) ([]TailPoint, error) {
	var te core.TailEstimator
	return te.EstimateCurve(rep.Baselines, rep.Ordering, keysInFast)
}

// CostReduction exposes the paper's cost model R(p): the relative memory
// cost of holding fastBytes of a totalBytes dataset in FastMem when
// SlowMem costs p per byte relative to FastMem.
func CostReduction(fastBytes, totalBytes int64, p float64) float64 {
	return costmodel.CostReduction(fastBytes, totalBytes, p)
}

// CloudShare reports the estimated memory fraction of one cloud VM's
// hourly price (the bars of the paper's Fig 1).
type CloudShare = costmodel.ShareRow

// CloudMemoryShares fits the embedded 2018-era VM catalogs of AWS, GCP
// and Azure by least squares and reports the memory cost share of every
// memory-optimized instance — the analysis motivating the paper: memory
// is 60–85% of the cost of Memory Optimized VMs.
func CloudMemoryShares() ([]CloudShare, error) { return costmodel.Fig1() }

// PriceFactorFromHardware derives the price factor p from actual per-GB
// prices of the slow and fast memory technologies, as a Mnemo user with
// real hardware quotes would.
func PriceFactorFromHardware(slowPerGB, fastPerGB float64) (float64, error) {
	return costmodel.PriceFactorFromHardware(slowPerGB, fastPerGB)
}

// WorkloadByName generates a built-in workload: one of the paper's
// Table III traces ("trending", "news_feed", "timeline",
// "edit_thumbnail", "trending_preview") or a stock YCSB core workload
// ("ycsb_a", "ycsb_b", "ycsb_c", "ycsb_d", "ycsb_f").
func WorkloadByName(name string, seed int64) (*Workload, error) {
	w, err := registry.ResolveWorkload(name, seed, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("mnemo: %w", err)
	}
	return w, nil
}

// WorkloadByNameSized is WorkloadByName with key-space and trace-length
// overrides; zero keeps the preset's defaults.
func WorkloadByNameSized(name string, seed int64, keys, requests int) (*Workload, error) {
	w, err := registry.ResolveWorkload(name, seed, keys, requests)
	if err != nil {
		return nil, fmt.Errorf("mnemo: %w", err)
	}
	return w, nil
}

// WorkloadNames lists the Table III workload names.
func WorkloadNames() []string {
	specs := ycsb.TableIII(0)
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// AllWorkloadNames lists every built-in workload, Table III presets
// first, then the YCSB core workloads.
func AllWorkloadNames() []string { return ycsb.AllWorkloadNames() }

// GenerateWorkload builds a workload from a custom spec.
func GenerateWorkload(spec WorkloadSpec) (*Workload, error) { return ycsb.Generate(spec) }

// WorkloadProfile is the descriptive summary of a trace (hot-set sizes,
// access skew, record-size range) — the a-priori workload knowledge the
// paper's approach builds on.
type WorkloadProfile = ycsb.Profile

// DescribeWorkload summarizes a trace without running anything.
func DescribeWorkload(w *Workload) WorkloadProfile { return ycsb.Describe(w) }

// LoadWorkloadCSV reads a workload trace in the mnemo-workload v1 CSV
// format (as produced by Workload.WriteCSV or cmd/workloadgen).
func LoadWorkloadCSV(r io.Reader) (*Workload, error) { return ycsb.ReadCSV(r) }

// OpenTrace opens a binary .mtrc trace (as produced by cmd/workloadgen
// -o trace.mtrc, or WriteTrace) as a streamed workload: the dataset is
// reconstructed from the schema header and the request trace stays on
// disk, replayed frame by frame in O(frame) resident memory — traces
// far larger than RAM profile fine. Streamed workloads measure through
// every pipeline except adaptive replay (Options.EpochOps must be 0).
func OpenTrace(path string) (*Workload, error) { return trace.Open(path) }

// WriteTrace spills a workload's trace to a binary .mtrc file, whatever
// its in-memory backing. Key names round-trip (generated canonical
// names are elided from the file; imported names are carried per key).
func WriteTrace(w *Workload, path string) error { return trace.WriteWorkload(w, path) }

// ValidateTrace schema-checks a .mtrc file — every header field, frame
// checksum, key index and op kind — without building a workload, and
// reports its dimensions. It shares no decode code with the streaming
// reader, so the two implementations cross-check each other.
func ValidateTrace(path string) (TraceSummary, error) {
	s, err := trace.ValidateFile(path)
	if err != nil {
		return TraceSummary{}, err
	}
	return TraceSummary{Name: s.Header.Name, Keys: s.Header.Keys,
		Requests: int64(s.Header.Requests), Frames: s.Frames,
		ReadWriteFrames: s.RWFrames}, nil
}

// TraceSummary reports a validated .mtrc trace's dimensions.
type TraceSummary struct {
	Name            string
	Keys            int
	Requests        int64
	Frames          int
	ReadWriteFrames int
}

// LoadRedisMonitor imports a workload descriptor from a Redis MONITOR
// capture — the practical way to collect a production cache's key and
// request-type sequence. Keys never written in the capture get
// defaultSize bytes (MONITOR does not show read payloads).
func LoadRedisMonitor(r io.Reader, defaultSize int) (*Workload, error) {
	return ycsb.ParseRedisMonitor(r, defaultSize)
}

// Engines lists the available store engines.
func Engines() []Engine { return server.Engines() }

// EngineByName resolves "redislike", "memcachedlike" or "dynamolike".
func EngineByName(name string) (Engine, bool) { return server.EngineByName(name) }
