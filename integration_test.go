// Integration tests: the complete consultant loop across every module —
// generate a workload, serialize and reload it, profile it, take the
// advice, materialize the placement on a live deployment, replay the
// trace against it, and verify the *measured* performance honors the SLO
// the advisor promised. This is the end-to-end contract a Mnemo user
// relies on.
package mnemo_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"mnemo"
	"mnemo/internal/client"
	"mnemo/internal/core"
	"mnemo/internal/memsim"
	"mnemo/internal/server"
)

// integrationWorkload is small enough for CI but large enough that the
// hot set dwarfs the (scaled) LLC.
func integrationWorkload(t *testing.T, seed int64) *mnemo.Workload {
	t.Helper()
	w, err := mnemo.GenerateWorkload(mnemo.WorkloadSpec{
		Name: "integration", Keys: 1500, Requests: 15000,
		Dist:      mnemo.DistSpec{Kind: mnemo.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 1.0, Sizes: mnemo.SizeThumbnail, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAdvisedPlacementMeetsSLOWhenDeployed(t *testing.T) {
	w := integrationWorkload(t, 101)
	const slo = 0.10

	cfg := core.DefaultConfig(server.RedisLike, 101)
	rep, err := core.Profile(context.Background(), cfg, w, core.Touch, slo)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Advice
	if a.Point.CostFactor >= 1 {
		t.Fatalf("advisor found no savings (cost %.3f)", a.Point.CostFactor)
	}

	// Materialize the placement and actually serve the workload on it.
	var pe core.PlacementEngine
	placement, err := pe.PlacementFor(rep.Ordering, a.Point)
	if err != nil {
		t.Fatal(err)
	}
	runCfg := cfg.Server
	runCfg.Seed += 999 // independent execution, fresh noise
	measured, err := client.Execute(runCfg, w, placement)
	if err != nil {
		t.Fatal(err)
	}

	// The measured run must honor the SLO against the measured FastMem
	// baseline, with a small tolerance for run-to-run noise.
	fast := rep.Baselines.Fast.ThroughputOpsSec
	floor := fast * (1 - slo) * 0.99
	if measured.ThroughputOpsSec < floor {
		t.Fatalf("deployed placement %.0f ops/s below SLO floor %.0f (fast baseline %.0f)",
			measured.ThroughputOpsSec, floor, fast)
	}

	// And the estimate for that point must match the measurement closely.
	errPct := math.Abs(measured.ThroughputOpsSec-a.Point.EstThroughputOps) /
		measured.ThroughputOpsSec * 100
	if errPct > 2 {
		t.Errorf("advised-point estimate off by %.2f%%", errPct)
	}
}

func TestPlacementEngineRoutesBytesAsAdvised(t *testing.T) {
	w := integrationWorkload(t, 102)
	cfg := core.DefaultConfig(server.MemcachedLike, 102)
	rep, err := core.Profile(context.Background(), cfg, w, core.MnemoT, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var pe core.PlacementEngine
	d, err := pe.Populate(cfg.Server, w, rep.Ordering, rep.Advice.Point)
	if err != nil {
		t.Fatal(err)
	}
	fastUsed := d.Machine().Node(memsim.Fast).Used()
	if fastUsed != rep.Advice.Point.FastBytes {
		t.Fatalf("fast node holds %d bytes, advice said %d", fastUsed, rep.Advice.Point.FastBytes)
	}
	slowUsed := d.Machine().Node(memsim.Slow).Used()
	if fastUsed+slowUsed != w.Dataset.TotalBytes {
		t.Fatalf("placed bytes %d != dataset %d", fastUsed+slowUsed, w.Dataset.TotalBytes)
	}
	if got := d.Instance(memsim.Fast).Len() + d.Instance(memsim.Slow).Len(); got != len(w.Dataset.Records) {
		t.Fatalf("placed keys %d != dataset %d", got, len(w.Dataset.Records))
	}
}

func TestWorkloadSurvivesSerializationThroughPipeline(t *testing.T) {
	orig := integrationWorkload(t, 103)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := mnemo.LoadWorkloadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Profiling the serialized+reloaded workload gives identical advice
	// (the descriptor is the trace itself; no generation metadata is
	// needed).
	opts := mnemo.Options{Store: mnemo.RedisLike, Seed: 103, SLO: 0.10}
	a, err := mnemo.Profile(orig, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mnemo.Profile(loaded, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Advice.Point.KeysInFast != b.Advice.Point.KeysInFast {
		t.Fatalf("advice differs after round trip: %d vs %d keys",
			a.Advice.Point.KeysInFast, b.Advice.Point.KeysInFast)
	}
	if a.Advice.Point.FastBytes != b.Advice.Point.FastBytes {
		t.Fatal("advised capacity differs after round trip")
	}
}

func TestExternalTieringPipeline(t *testing.T) {
	// Mode 2b end to end: a deliberately *bad* external ordering (cold
	// keys first) must yield strictly worse advice than MnemoT, and Mnemo
	// must still estimate it accurately — the tool is a consultant, not a
	// critic.
	w := integrationWorkload(t, 104)
	reads, writes := w.AccessCounts()
	// Order keys by ascending access count: pessimal for FastMem.
	type kc struct{ idx, acc int }
	order := make([]kc, len(reads))
	for i := range reads {
		order[i] = kc{i, reads[i] + writes[i]}
	}
	for i := 1; i < len(order); i++ { // insertion sort by ascending count
		for j := i; j > 0 && order[j].acc < order[j-1].acc; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	cold := make([]string, len(order))
	for i, o := range order {
		cold[i] = w.Dataset.Records[o.idx].Key
	}

	opts := mnemo.Options{Store: mnemo.RedisLike, Seed: 104, SLO: 0.10}
	bad, err := mnemo.ProfileWithTiering(w, cold, opts)
	if err != nil {
		t.Fatal(err)
	}
	good, err := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, Seed: 104, SLO: 0.10, UseMnemoT: true})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Advice.Point.CostFactor <= good.Advice.Point.CostFactor {
		t.Fatalf("cold-first ordering advised cost %.3f not above MnemoT %.3f",
			bad.Advice.Point.CostFactor, good.Advice.Point.CostFactor)
	}
	// Accuracy holds even for the bad ordering.
	cfg := core.DefaultConfig(server.RedisLike, 104)
	ord, err := core.ExternalOrdering(w, cold)
	if err != nil {
		t.Fatal(err)
	}
	points, err := core.Validate(context.Background(), cfg, w, bad.Curve, ord, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if math.Abs(p.ThroughputErrPct) > 3 {
			t.Errorf("estimate error %.2f%% at k=%d on external ordering",
				p.ThroughputErrPct, p.Point.KeysInFast)
		}
	}
}

func TestEnginesShareOneWorkloadDeterministically(t *testing.T) {
	// The same descriptor profiles on all three engines without
	// interference, and repeated profiling is bit-identical.
	w := integrationWorkload(t, 105)
	for _, e := range mnemo.Engines() {
		r1, err := mnemo.Profile(w, mnemo.Options{Store: e, Seed: 105})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		r2, err := mnemo.Profile(w, mnemo.Options{Store: e, Seed: 105})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Baselines.Fast.Runtime != r2.Baselines.Fast.Runtime ||
			r1.Baselines.Slow.Runtime != r2.Baselines.Slow.Runtime {
			t.Errorf("%v: repeated profiling differs", e)
		}
	}
}

func TestSizeAwareOptionThreadsThroughFacade(t *testing.T) {
	w, err := mnemo.GenerateWorkload(mnemo.WorkloadSpec{
		Name: "mixed", Keys: 800, Requests: 8000,
		Dist:      mnemo.DistSpec{Kind: mnemo.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 1.0, Sizes: mnemo.SizeTrendingPreview, Seed: 106,
	})
	if err != nil {
		t.Fatal(err)
	}
	global, err := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, Seed: 106, UseMnemoT: true})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, Seed: 106, UseMnemoT: true,
		SizeAwareEstimate: true})
	if err != nil {
		t.Fatal(err)
	}
	// The two models must disagree somewhere in the interior (they use
	// different penalties) while sharing both endpoints.
	if global.Curve.FastOnly().EstRuntime != aware.Curve.FastOnly().EstRuntime {
		t.Error("fast endpoints should coincide")
	}
	differs := false
	for k := 1; k < len(global.Curve.Points)-1; k++ {
		if global.Curve.Points[k].EstRuntime != aware.Curve.Points[k].EstRuntime {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("size-aware estimate identical to global on mixed sizes")
	}
}
