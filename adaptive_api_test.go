package mnemo

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"mnemo/internal/core"
	"mnemo/internal/registry"
	"mnemo/internal/server"
)

// TestEpochZeroCoreEquivalence pins the zero-value static guarantee at
// the pipeline level: a core config carrying an adaptive source with
// EpochOps = 0 — migration knobs set, and therefore inert — produces a
// report, curve CSV and JSON summary byte-identical to the plain static
// pipeline's.
func TestEpochZeroCoreEquivalence(t *testing.T) {
	w := tinyAPIWorkload(t)
	pol, err := registry.New("adaptive-freq", 9)
	if err != nil {
		t.Fatal(err)
	}
	ep, ok := core.AsEpochPolicy(pol)
	if !ok {
		t.Fatal("adaptive-freq is not an EpochPolicy")
	}
	ctx := context.Background()
	staticCfg := core.DefaultConfig(server.RedisLike, 9)
	base, err := core.Profile(ctx, staticCfg, w, pol, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	adCfg := staticCfg
	adCfg.Server.Adaptive = ep
	adCfg.Server.EpochOps = 0
	adCfg.Server.MigrationCostPerByte = 3
	adCfg.Server.MigrationBudget = 1 << 20
	got, err := core.Profile(ctx, adCfg, w, pol, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatal("EpochOps=0 pipeline report diverged from the static pipeline")
	}
	var baseCSV, gotCSV bytes.Buffer
	if err := base.Curve.WriteCSV(&baseCSV); err != nil {
		t.Fatal(err)
	}
	if err := got.Curve.WriteCSV(&gotCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseCSV.Bytes(), gotCSV.Bytes()) {
		t.Fatal("curve CSV bytes diverged")
	}
	baseJSON, err := json.Marshal(base.Summary(16))
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got.Summary(16))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseJSON, gotJSON) {
		t.Fatal("JSON summary bytes diverged")
	}
}

// driftAPIWorkload is a hot-set-drift trace long enough for several
// epochs, exercised through the public API.
func driftAPIWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := GenerateWorkload(WorkloadSpec{
		Name: "apidrift", Keys: 300, Requests: 3 * 4096,
		Dist:      DistSpec{Kind: HotSetDrift, HotSetFraction: 0.1, HotOpnFraction: 0.9},
		ReadRatio: 1.0, Sizes: SizeFixed10KB, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestMeasureAdaptive drives the public adaptive-measurement seam end to
// end: profile with an adaptive policy, measure the advised placement
// both ways, and check the migration ledger.
func TestMeasureAdaptive(t *testing.T) {
	w := driftAPIWorkload(t)
	// DynamoLike is the memory-sensitive engine, so a tight SLO advises a
	// genuinely mixed placement for the adaptive run to reshape.
	opts := Options{
		Store: DynamoLike, Seed: 13, SLO: 0.01,
		Policy: "adaptive-freq", EpochOps: 4096, MigrationCostPerByte: 0.5,
	}
	rep, err := Profile(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := MeasureAdaptive(context.Background(), w, rep, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ac.Static.Epochs != 0 || ac.Static.MovesApplied != 0 {
		t.Fatalf("static leg adapted: %+v", ac.Static)
	}
	if ac.Adaptive.Epochs != 3 {
		t.Fatalf("adaptive leg served %d epochs, want 3", ac.Adaptive.Epochs)
	}
	if ac.Adaptive.MovesApplied == 0 || ac.Adaptive.MigratedBytes == 0 {
		t.Fatalf("drifting hot set produced no migrations: %+v", ac.Adaptive)
	}
	if want := float64(ac.Adaptive.MigratedBytes) * 0.5; ac.Adaptive.MigrationNs != want {
		t.Fatalf("migration cost %v ns, want %v", ac.Adaptive.MigrationNs, want)
	}
	if g := ac.RuntimeGain(); g < -1 || g > 10 {
		t.Fatalf("runtime gain %v out of any plausible range", g)
	}
}

// TestMeasureAdaptiveErrors covers the seam's preconditions.
func TestMeasureAdaptiveErrors(t *testing.T) {
	w := driftAPIWorkload(t)
	static := Options{Store: DynamoLike, Seed: 13, SLO: 0.01}
	rep, err := Profile(w, static)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureAdaptive(context.Background(), w, rep, static); err == nil {
		t.Error("EpochOps 0 accepted")
	}
	adaptive := static
	adaptive.Policy, adaptive.EpochOps = "adaptive-freq", 4096
	noAdvice, err := Profile(w, Options{Store: DynamoLike, Seed: 13, Policy: "adaptive-freq", EpochOps: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureAdaptive(context.Background(), w, noAdvice, adaptive); err == nil {
		t.Error("advice-free report accepted")
	}
}
