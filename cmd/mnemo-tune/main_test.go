package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnemo"
)

// The full loop: search a small workload, write the spec and the HTML
// frontier report, and check the spec decodes and names the winner.
func TestRunWritesSpecAndHTML(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "tuned.json")
	htmlPath := filepath.Join(dir, "tune.html")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-keys", "150", "-requests", "2000",
		"-slo", "0.10", "-budget", "12", "-search-seed", "3",
		"-policies", "mnemot,knapsack,freqdecay",
		"-o", specPath, "-html", htmlPath,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "1 baseline measurement") {
		t.Errorf("memoization broke — stderr reports more than one measurement:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "winner ") {
		t.Errorf("winner line missing:\n%s", stderr.String())
	}
	f, err := os.Open(specPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := mnemo.DecodeTuneSpec(f)
	if err != nil {
		t.Fatalf("written spec does not decode: %v", err)
	}
	if spec.Workload.Name != "trending" || spec.SLO != 0.10 {
		t.Errorf("spec carries wrong search: %+v", spec)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Tuned configuration frontier", "frontier", "policy defaults"} {
		if !strings.Contains(string(html), want) {
			t.Errorf("html report missing %q", want)
		}
	}
}

// -o - streams the spec JSON to stdout.
func TestRunSpecOnStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-keys", "150", "-requests", "2000",
		"-budget", "8", "-policies", "mnemot,knapsack",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mnemo.DecodeTuneSpec(&stdout); err != nil {
		t.Fatalf("stdout spec does not decode: %v", err)
	}
}

// The catalog prints each tunable policy's parameter space.
func TestRunListPolicies(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list-policies"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"knapsack", "anchor", "rungs", "default 3", "[0, 1]", "decay", "log"} {
		if !strings.Contains(out, want) {
			t.Errorf("catalog missing %q:\n%s", want, out)
		}
	}
}

// Search misconfiguration surfaces as an error, not a panic.
func TestRunRejections(t *testing.T) {
	cases := [][]string{
		{"-slo", "0"},
		{"-store", "bogus"},
		{"-workload", "bogus"},
		{"-policies", "bogus"},
		{"-budget", "-1"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(append(args, "-keys", "50", "-requests", "200"), &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
