// Command mnemo-tune searches the tiering policy/parameter space for
// the cheapest FastMem sizing that keeps a workload within a slowdown
// SLO, and writes the winning configuration as a reproducible tuned
// spec that `mnemo -config` replays bit-identically.
//
// All candidate evaluations share one content-addressed baseline
// measurement (DESIGN.md §17), so a 64-candidate search costs little
// more than profiling the workload once. The search is deterministic
// under -search-seed for any -workers value.
//
// Usage:
//
//	mnemo-tune [flags]
//
//	-workload name    Table III workload (trending, news_feed, timeline,
//	                  edit_thumbnail, trending_preview) or a ycsb preset
//	-keys n           key-space override (0 = workload default)
//	-requests n       trace-length override (0 = workload default)
//	-store name       redislike | memcachedlike | dynamolike
//	-seed n           measurement seed (also the workload generation seed)
//	-slo pct          permissible slowdown, e.g. 0.10 (required > 0)
//	-p factor         SlowMem:FastMem per-byte price ratio (default 0.2)
//	-runs n           repetitions per baseline measurement
//	-budget n         candidate-evaluation budget (default 64)
//	-search-seed n    seed of the random exploration phase
//	-workers n        parallel candidate evaluations (0 = GOMAXPROCS)
//	-policies a,b,..  restrict the search to these policies
//	-o file           write the tuned spec JSON here (default stdout,
//	                  "" = skip)
//	-html file        also write an HTML report with the Pareto frontier
//	-list-policies    print the catalog with each policy's parameter
//	                  space and exit
//
// Example:
//
//	mnemo-tune -workload news_feed -slo 0.07 -o tuned.json
//	mnemo -config tuned.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mnemo"
	"mnemo/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mnemo-tune:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mnemo-tune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload   = fs.String("workload", "trending", "Table III workload name")
		keys       = fs.Int("keys", 0, "key-space size override")
		requests   = fs.Int("requests", 0, "request-count override")
		store      = fs.String("store", "redislike", "store engine: redislike|memcachedlike|dynamolike")
		seed       = fs.Int64("seed", 42, "measurement and workload generation seed")
		slo        = fs.Float64("slo", 0.10, "permissible slowdown the tuned sizing must keep")
		price      = fs.Float64("p", mnemo.DefaultPriceFactor, "SlowMem:FastMem per-byte price ratio")
		runs       = fs.Int("runs", 1, "repetitions per baseline measurement")
		budget     = fs.Int("budget", 0, "candidate-evaluation budget (0 = 64)")
		searchSeed = fs.Int64("search-seed", 1, "seed of the random exploration phase")
		workers    = fs.Int("workers", 0, "parallel candidate evaluations (0 = GOMAXPROCS)")
		policies   = fs.String("policies", "", "comma-separated policies to search (default: all)")
		outPath    = fs.String("o", "-", "tuned spec JSON destination ('-' = stdout, '' = skip)")
		htmlOut    = fs.String("html", "", "also write an HTML frontier report to this file")
		listPol    = fs.Bool("list-policies", false, "print the policy catalog with parameter spaces and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listPol {
		return report.PolicyCatalog(stdout, policyCatalog())
	}
	engine, ok := mnemo.EngineByName(*store)
	if !ok {
		return fmt.Errorf("unknown store %q", *store)
	}
	var searched []string
	if *policies != "" {
		for _, n := range strings.Split(*policies, ",") {
			if n = strings.TrimSpace(n); n != "" {
				searched = append(searched, n)
			}
		}
	}

	recipe := mnemo.TuneWorkloadRecipe{Name: *workload, Seed: *seed, Keys: *keys, Requests: *requests}
	opts := mnemo.Options{Store: engine, Seed: *seed, Runs: *runs, PriceFactor: *price, SLO: *slo}
	topts := mnemo.TuneOptions{Budget: *budget, SearchSeed: *searchSeed, Workers: *workers, Policies: searched}
	res, spec, err := mnemo.TuneWithSpec(context.Background(), recipe, opts, topts)
	if err != nil {
		return err
	}

	fmt.Fprintf(stderr, "tuned %s on %s: %d candidates, %d baseline measurement(s)\n",
		*workload, *store, len(res.Evals), res.Stats.Measurements)
	fmt.Fprintf(stderr, "winner %s: cost %.4f (slowdown %.4f, %s FastMem)\n",
		res.Winner.PolicyName, res.Winner.CostFactor, res.Winner.Slowdown,
		report.FormatBytes(res.Winner.FastBytes))
	if gain := res.Gain(); gain > 0 {
		fmt.Fprintf(stderr, "beats best default %s by %.4f cost (%.2f%% of FastMem-only)\n",
			res.Defaults[0].PolicyName, gain, gain*100)
	} else {
		fmt.Fprintf(stderr, "no improvement over default %s (defaults are on the frontier)\n",
			res.Defaults[0].PolicyName)
	}
	if err := report.TuneFrontierTable(tuneRows(res.Frontier), tuneRows(res.Defaults), res.Stats.Measurements).Render(stderr); err != nil {
		return err
	}

	if *htmlOut != "" {
		if err := writeHTML(*htmlOut, res, recipe, *store); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "html report written to %s\n", *htmlOut)
	}

	switch *outPath {
	case "":
		return nil
	case "-":
		return spec.Encode(stdout)
	default:
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := spec.Encode(f); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "tuned spec written to %s (replay with: mnemo -config %s)\n", *outPath, *outPath)
		return nil
	}
}

// writeHTML renders the frontier report.
func writeHTML(path string, res *mnemo.TuneResult, recipe mnemo.TuneWorkloadRecipe, store string) error {
	doc := &report.HTMLReport{
		Title: fmt.Sprintf("Mnemo tuning report — %s on %s", recipe.Name, store),
		Sections: []report.HTMLSection{
			{
				Heading: "Search",
				Paragraphs: []string{fmt.Sprintf(
					"%d candidate configurations evaluated against %d shared baseline "+
						"measurement(s); the search is deterministic under its seed.",
					len(res.Evals), res.Stats.Measurements)},
			},
			report.TuneFrontierSection(tuneRows(res.Frontier), tuneRows(res.Defaults),
				res.SLO, res.Stats.Measurements),
		},
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := doc.Render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// tuneRows adapts evaluations for report rendering.
func tuneRows(evals []mnemo.TuneEval) []report.TuneRow {
	rows := make([]report.TuneRow, len(evals))
	for i, e := range evals {
		rows[i] = report.TuneRow{
			Policy:      e.PolicyName,
			CostFactor:  e.CostFactor,
			Slowdown:    e.Slowdown,
			FastBytes:   e.FastBytes,
			KeysInFast:  e.KeysInFast,
			Satisfiable: e.Satisfiable,
		}
	}
	return rows
}

// policyCatalog adapts the public policy listing for catalog rendering.
func policyCatalog() []report.CatalogEntry {
	var out []report.CatalogEntry
	for _, p := range mnemo.Policies() {
		e := report.CatalogEntry{Name: p.Name, Description: p.Description}
		for _, pr := range p.Params {
			e.Params = append(e.Params, report.CatalogParam{
				Name: pr.Name, Min: pr.Min, Max: pr.Max, Default: pr.Default,
				Integer: pr.Integer, Log: pr.Log, Description: pr.Description,
			})
		}
		out = append(out, e)
	}
	return out
}
