package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSelectedExperiments(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-quick", "table1", "table2", "fig4"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"######## table1", "######## table2", "######## fig4",
		"Table I", "Table II", "Fig 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(stderr.String(), "[table1 done in") {
		t.Error("timing lines missing")
	}
}

func TestRunMeasuredExperimentQuick(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quick", "-seed", "7", "fig9"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Fig 9") {
		t.Error("fig9 output missing")
	}
	// All five workload rows render.
	for _, wl := range []string{"trending", "news_feed", "timeline", "edit_thumbnail", "trending_preview"} {
		if !strings.Contains(stdout.String(), wl) {
			t.Errorf("fig9 missing row %s", wl)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"bogus"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunChaosFlags(t *testing.T) {
	// A light fault schedule with a simulated-time budget must still
	// produce the experiment output: runs retry and degrade instead of
	// aborting the sweep.
	var stdout, stderr bytes.Buffer
	args := []string{"-quick", "-seed", "7", "-fault", "0.05", "-fault-seed", "3", "-timeout", "600", "fig9"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Fig 9") {
		t.Error("fig9 output missing under fault injection")
	}
}

func TestRunRejectsBadChaosFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-fault", "1.5", "table1"},
		{"-fault", "-0.1", "table1"},
		{"-timeout", "-1", "table1"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestExperimentListHasNoDuplicates(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.name] {
			t.Errorf("experiment %q registered twice", e.name)
		}
		seen[e.name] = true
		if e.run == nil {
			t.Errorf("experiment %q has no runner", e.name)
		}
	}
	if len(all) < 19 {
		t.Errorf("only %d experiments registered", len(all))
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
}
