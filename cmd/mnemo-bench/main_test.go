package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mnemo/internal/client"
)

func TestRunSelectedExperiments(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-quick", "table1", "table2", "fig4"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"######## table1", "######## table2", "######## fig4",
		"Table I", "Table II", "Fig 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(stderr.String(), "[table1 done in") {
		t.Error("timing lines missing")
	}
}

func TestRunMeasuredExperimentQuick(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quick", "-seed", "7", "fig9"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Fig 9") {
		t.Error("fig9 output missing")
	}
	// All five workload rows render.
	for _, wl := range []string{"trending", "news_feed", "timeline", "edit_thumbnail", "trending_preview"} {
		if !strings.Contains(stdout.String(), wl) {
			t.Errorf("fig9 missing row %s", wl)
		}
	}
}

func TestRunNoBatchBitIdentical(t *testing.T) {
	// -no-batch swaps the batched kernel for the per-op replay path; the
	// rendered experiment output must not change by a single byte.
	var batched, perOp bytes.Buffer
	var stderr bytes.Buffer
	if err := run([]string{"-quick", "-seed", "7", "fig9"}, &batched, &stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-seed", "7", "-no-batch", "fig9"}, &perOp, &stderr); err != nil {
		t.Fatal(err)
	}
	if batched.String() != perOp.String() {
		t.Errorf("-no-batch changed fig9 output:\nbatched:\n%s\nper-op:\n%s", batched.String(), perOp.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"bogus"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunChaosFlags(t *testing.T) {
	// A light fault schedule with a simulated-time budget must still
	// produce the experiment output: runs retry and degrade instead of
	// aborting the sweep.
	var stdout, stderr bytes.Buffer
	args := []string{"-quick", "-seed", "7", "-fault", "0.05", "-fault-seed", "3", "-timeout", "600", "fig9"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Fig 9") {
		t.Error("fig9 output missing under fault injection")
	}
}

func TestRunRejectsBadChaosFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-fault", "1.5", "table1"},
		{"-fault", "-0.1", "table1"},
		{"-timeout", "-1", "table1"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestExperimentListHasNoDuplicates(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.name] {
			t.Errorf("experiment %q registered twice", e.name)
		}
		seen[e.name] = true
		if e.run == nil {
			t.Errorf("experiment %q has no runner", e.name)
		}
	}
	if len(all) < 19 {
		t.Errorf("only %d experiments registered", len(all))
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunMetricsDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quick", "-seed", "3", "-metrics", path, "fig5a"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE mnemo_client_runs_total counter",
		"mnemo_server_ops_total",
		"mnemo_pool_jobs_total",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
	if !strings.Contains(stderr.String(), "metrics written to") {
		t.Error("metrics write not reported on stderr")
	}
}

func TestRunMetricsSurviveTimeout(t *testing.T) {
	// Every run stalls (probability 1) past a 1-simulated-second budget:
	// the sweep fails with ErrRunTimeout, and the -metrics dump must
	// still happen, carrying the timeout counters of the partial run.
	path := filepath.Join(t.TempDir(), "metrics.prom")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-quick", "-seed", "7", "-fault-stall", "1", "-timeout", "1",
		"-metrics", path, "fig9"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("all-stall schedule did not fail the sweep")
	}
	if !errors.Is(err, client.ErrRunTimeout) {
		t.Fatalf("error does not wrap ErrRunTimeout: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics not dumped after failure: %v", err)
	}
	re := regexp.MustCompile(`(?m)^mnemo_client_run_timeouts_total (\d+)$`)
	m := re.FindStringSubmatch(string(data))
	if m == nil {
		t.Fatalf("mnemo_client_run_timeouts_total missing from dump:\n%s", data)
	}
	if n, _ := strconv.Atoi(m[1]); n == 0 {
		t.Error("timeout counter is zero after an all-stall run")
	}
	if !strings.Contains(string(data), `mnemo_server_faults_total{kind="stall"}`) {
		t.Error("stall fault counter missing")
	}
}

func TestRunRejectsBadClassFaultFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-fault-fail", "1.5", "table1"},
		{"-fault-stall", "2", "table1"},
		{"-fault-outlier", "9", "table1"},
		{"-fault-shard", "1.5", "cluster-sweep"},
		{"-fault-shard", "-0.1", "cluster-sweep"},
		{"-shards", "4", "-hedge", "0.5", "cluster-sweep"},
		// Shard-granular knobs are meaningless on a single deployment.
		{"-fault-shard", "0.2", "table1"},
		{"-hedge", "2", "table1"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunClusterShardFaultFlags(t *testing.T) {
	// A sharded chaos schedule with hedging must still complete the
	// cluster sweep: crashed shards retry or degrade to a partial merge
	// instead of failing the experiment.
	var stdout, stderr bytes.Buffer
	args := []string{"-quick", "-seed", "7", "-shards", "4", "-fault-shard", "0.1",
		"-fault-seed", "3", "-hedge", "1.5", "cluster-sweep"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Cluster sweep") {
		t.Error("cluster sweep output missing under shard chaos")
	}
}

func TestRunTuneSweepQuick(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quick", "-seed", "7", "tune-sweep"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"mnemo-tune search", "trending", "news_feed"} {
		if !strings.Contains(out, want) {
			t.Errorf("tune-sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestRunListPoliciesParams(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list-policies"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"knapsack", "anchor", "rungs", "decay", "default 3"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("catalog missing %q:\n%s", want, stdout.String())
		}
	}
}
