// Command mnemo-bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	mnemo-bench [flags] [experiment ...]
//
// With no arguments every experiment runs in order. Experiments:
//
//	fig1 table1 table2 fig3 fig4 fig5a fig5b fig5c
//	fig8a fig8b fig8c fig8d fig8f fig9 table4 downsample
//	ablation-llc ablation-noise ablation-knapsack ablation-anchor
//	ablation-sizeaware modeb policy-compare adaptive-compare ext-tails
//	ext-tech ycsb-core cluster-sweep tune-sweep
//
// Flags:
//
//	-quick          run at 10×-reduced scale (default is the paper's full
//	                scale: 10 000 keys × 100 000 requests per workload)
//	-seed n         deterministic seed
//	-shards n       replay every measurement across a consistent-hash
//	                cluster of n deployments (0 = single deployment;
//	                cluster-sweep defaults to 4 when unset)
//	-keys n         override the per-workload key count (0 = scale default)
//	-requests n     override the per-workload request count (0 = scale
//	                default) — -keys 10000000 -requests 100000000 is the
//	                README's 10M-key cluster recipe
//	-list-policies  print the tiering-policy catalog and exit
//	-fault p        chaos mode: each measurement run independently fails,
//	                stalls, or returns outlier latencies with probability p
//	                per class (deterministic per -seed/-fault-seed);
//	                measurements then retry and degrade instead of aborting
//	-fault-fail p   per-class probability overrides: set just one fault
//	-fault-stall p  class, or reshape the mix -fault applies to all three
//	-fault-outlier p
//	-fault-seed n   decorrelates the fault schedule from -seed
//	-fault-shard p  shard-granular chaos (needs -shards ≥ 2): each shard
//	                independently crashes mid-run or runs as a persistent
//	                straggler with probability p per class; shards retry in
//	                place and runs degrade to partial merges within a
//	                default fault budget (1 retry, ≥¼ of the cluster)
//	-hedge f        hedged re-execution (needs -shards ≥ 2): shards slower
//	                than f× the median shard runtime are speculatively
//	                re-run and the faster execution wins (0 = off, else ≥ 1)
//	-epoch-ops n    adaptive-compare: epoch length in requests (0 = the
//	                experiment default, one 4096-op replay block)
//	-migration-cost f  adaptive-compare: simulated migration charge in ns
//	                per payload byte (0 = the experiment default 0.1)
//	-migration-budget n  adaptive-compare: cap on migrated payload bytes
//	                per epoch boundary (0 = unlimited)
//	-trace file     replay a binary .mtrc trace (streamed, O(frame)
//	                memory) against every engine on FastMem-only and
//	                SlowMem-only placements instead of running the
//	                experiment suite; honors -shards/-fault/-no-batch
//	-timeout s      per-run budget in simulated seconds; a run whose
//	                simulated clock exceeds it (e.g. an injected stall) is
//	                cut off and retried (0 = unbounded)
//	-no-batch       force the per-op replay path instead of the batched
//	                kernel (bit-identical results; a comparison knob)
//	-cpuprofile f   write a pprof CPU profile of the run to f
//	-memprofile f   write a pprof heap profile (taken after the run) to f
//	-metrics f      dump run metrics (Prometheus text format) to f
//	                ("-" = stderr) — written even when a sweep fails, so a
//	                timed-out or fault-killed run stays observable
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mnemo/internal/client"
	"mnemo/internal/experiments"
	"mnemo/internal/obs"
	"mnemo/internal/registry"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/trace"
)

// experiment is one runnable unit.
type experiment struct {
	name string
	run  func(scale experiments.Scale, seed int64, w io.Writer) error
}

func renderTo[T interface{ Render(io.Writer) error }](w io.Writer, r T, err error) error {
	if err != nil {
		return err
	}
	return r.Render(w)
}

var all = []experiment{
	{"fig1", func(_ experiments.Scale, _ int64, w io.Writer) error {
		r, err := experiments.Fig1()
		return renderTo(w, r, err)
	}},
	{"table1", func(_ experiments.Scale, _ int64, w io.Writer) error {
		return experiments.Table1().Render(w)
	}},
	{"table2", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Table2(s, seed)
		return renderTo(w, r, err)
	}},
	{"fig3", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Fig3(s, seed)
		return renderTo(w, r, err)
	}},
	{"fig4", func(_ experiments.Scale, seed int64, w io.Writer) error {
		return experiments.Fig4(seed).Render(w)
	}},
	{"fig5a", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Fig5a(s, seed)
		return renderTo(w, r, err)
	}},
	{"fig5b", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Fig5b(s, seed)
		return renderTo(w, r, err)
	}},
	{"fig5c", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Fig5c(s, seed)
		return renderTo(w, r, err)
	}},
	{"fig8a", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Fig8a(s, seed)
		return renderTo(w, r, err)
	}},
	{"fig8b", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Fig8b(s, seed)
		return renderTo(w, r, err)
	}},
	{"fig8c", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Fig8cde(s, server.RedisLike, seed)
		return renderTo(w, r, err)
	}},
	{"fig8d", func(s experiments.Scale, seed int64, w io.Writer) error {
		// Tail latencies across all three stores (Fig 8d/8e); the
		// DynamoDB-like engine carries the heaviest tails.
		for _, e := range server.Engines() {
			r, err := experiments.Fig8cde(s, e, seed)
			if err != nil {
				return err
			}
			if err := r.Render(w); err != nil {
				return err
			}
		}
		return nil
	}},
	{"fig8f", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Fig8f(s, seed)
		return renderTo(w, r, err)
	}},
	{"fig9", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Fig9(s, seed)
		return renderTo(w, r, err)
	}},
	{"table4", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Table4(s, seed)
		return renderTo(w, r, err)
	}},
	{"downsample", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.Downsample(s, seed, []int{2, 5, 10, 20})
		return renderTo(w, r, err)
	}},
	{"ablation-llc", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.AblationLLC(s, seed)
		return renderTo(w, r, err)
	}},
	{"ablation-noise", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.AblationNoise(s, seed, []float64{0, 0.01, 0.02, 0.05})
		return renderTo(w, r, err)
	}},
	{"ablation-knapsack", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.AblationKnapsack(s, seed)
		return renderTo(w, r, err)
	}},
	{"ablation-anchor", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.AblationAnchor(s, seed)
		return renderTo(w, r, err)
	}},
	{"ablation-sizeaware", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.AblationSizeAware(s, seed)
		return renderTo(w, r, err)
	}},
	{"modeb", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.ModeB(s, seed, []int{1, 64, 1024, 16384})
		return renderTo(w, r, err)
	}},
	{"policy-compare", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.PolicyCompare(s, seed)
		return renderTo(w, r, err)
	}},
	{"adaptive-compare", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.AdaptiveCompare(s, seed)
		return renderTo(w, r, err)
	}},
	{"ycsb-core", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.YCSBCore(s, seed)
		return renderTo(w, r, err)
	}},
	{"ext-tech", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.ExtTech(s, seed)
		return renderTo(w, r, err)
	}},
	{"ext-tails", func(s experiments.Scale, seed int64, w io.Writer) error {
		for _, e := range server.Engines() {
			r, err := experiments.ExtTails(s, e, seed)
			if err != nil {
				return err
			}
			if err := r.Render(w); err != nil {
				return err
			}
		}
		return nil
	}},
	{"cluster-sweep", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.ClusterSweep(s, seed)
		return renderTo(w, r, err)
	}},
	{"tune-sweep", func(s experiments.Scale, seed int64, w io.Writer) error {
		r, err := experiments.TuneSweep(s, seed)
		return renderTo(w, r, err)
	}},
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mnemo-bench:", err)
		os.Exit(1)
	}
}

// runTrace replays a .mtrc trace (streamed, frame by frame) against
// every engine on all-FastMem and all-SlowMem placements — the baseline
// pair the estimate model is built from — and reports simulated
// throughput plus the host-side wall time and live heap, the two
// numbers that demonstrate the O(frame) streaming bound on traces
// larger than RAM.
func runTrace(path string, scale experiments.Scale, seed int64, stdout, stderr io.Writer) error {
	start := time.Now()
	w, err := trace.Open(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trace %s: %d keys, %d requests, dataset %s\n",
		w.Spec.Name, len(w.Dataset.Records), w.RequestCount(),
		report.FormatBytes(w.Dataset.TotalBytes))
	placements := []struct {
		name string
		p    server.Placement
	}{{"FastMem", server.AllFast()}, {"SlowMem", server.AllSlow()}}
	for _, e := range server.Engines() {
		for _, pl := range placements {
			cfg := server.DefaultConfig(e, seed)
			cfg.Fault = scale.Fault
			cfg.RunTimeout = scale.RunTimeout
			cfg.Obs = scale.Obs
			cfg.DisableBatchReplay = scale.DisableBatchReplay
			cfg.Shards = scale.Shards
			wall := time.Now()
			st, err := client.Execute(cfg, w, pl.p)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", e, pl.name, err)
			}
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			fmt.Fprintf(stdout, "%-14s %-8s %10.0f ops/s  simulated %-12v wall %-8v heap %s\n",
				e, pl.name, st.ThroughputOpsSec, st.Runtime,
				time.Since(wall).Round(time.Millisecond),
				report.FormatBytes(int64(ms.HeapAlloc)))
		}
	}
	fmt.Fprintf(stderr, "[trace replay done in %v]\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// dumpMetrics writes the sink's registry in Prometheus text format to
// path ("-" = stderr).
func dumpMetrics(path string, sink *obs.Sink, stderr io.Writer) error {
	var out io.Writer = stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := sink.Registry().WritePrometheus(out); err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(stderr, "metrics written to %s\n", path)
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mnemo-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run at 10x-reduced scale")
	seed := fs.Int64("seed", 42, "deterministic seed")
	shards := fs.Int("shards", 0, "replay across a consistent-hash cluster of `n` deployments (0 = single deployment)")
	keys := fs.Int("keys", 0, "override the per-workload key count (0 = scale default)")
	requests := fs.Int("requests", 0, "override the per-workload request count (0 = scale default)")
	fault := fs.Float64("fault", 0, "inject faults with probability `p` per class (fail/stall/outlier)")
	faultFail := fs.Float64("fault-fail", -1, "fail-fault probability `p` (overrides -fault for this class)")
	faultStall := fs.Float64("fault-stall", -1, "stall-fault probability `p` (overrides -fault for this class)")
	faultOutlier := fs.Float64("fault-outlier", -1, "outlier-fault probability `p` (overrides -fault for this class)")
	faultSeed := fs.Int64("fault-seed", 1, "seed of the fault schedule")
	faultShard := fs.Float64("fault-shard", 0, "shard-granular chaos: each shard independently crashes mid-run or runs as a persistent straggler with probability `p` per class (needs -shards ≥ 2)")
	hedge := fs.Float64("hedge", 0, "hedge shards slower than `factor`× the median shard runtime (0 = off, else ≥ 1; needs -shards ≥ 2)")
	epochOps := fs.Int("epoch-ops", 0, "adaptive-compare: epoch length in `requests` (0 = experiment default)")
	migCost := fs.Float64("migration-cost", 0, "adaptive-compare: migration charge in `ns` per payload byte (0 = experiment default)")
	migBudget := fs.Int64("migration-budget", 0, "adaptive-compare: cap on migrated payload `bytes` per epoch (0 = unlimited)")
	timeout := fs.Float64("timeout", 0, "per-run budget in simulated `seconds` (0 = unbounded)")
	tracePath := fs.String("trace", "", "replay a binary .mtrc trace `file` (streamed, FastMem/SlowMem baselines per engine) instead of running experiments")
	noBatch := fs.Bool("no-batch", false, "force the per-op replay path (disable the batched kernel)")
	cpuprofile := fs.String("cpuprofile", "", "write CPU profile to `file`")
	memprofile := fs.String("memprofile", "", "write heap profile to `file`")
	metrics := fs.String("metrics", "", "dump run metrics (Prometheus text format) to `file` ('-' = stderr), even on failure")
	listPolicies := fs.Bool("list-policies", false, "print the tiering-policy catalog and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listPolicies {
		var entries []report.CatalogEntry
		for _, e := range registry.Entries() {
			ce := report.CatalogEntry{Name: e.Name, Description: e.Description}
			for _, p := range e.Params {
				ce.Params = append(ce.Params, report.CatalogParam{
					Name: p.Name, Min: p.Min, Max: p.Max, Default: p.Default,
					Integer: p.Integer, Log: p.Log, Description: p.Description,
				})
			}
			entries = append(entries, ce)
		}
		return report.PolicyCatalog(stdout, entries)
	}
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d must be non-negative", *shards)
	}
	scale.Shards = *shards
	if *keys < 0 || *requests < 0 {
		return fmt.Errorf("-keys/-requests must be non-negative")
	}
	if *keys > 0 {
		scale.Keys = *keys
	}
	if *requests > 0 {
		scale.Requests = *requests
	}
	if *fault < 0 || *fault > 1 {
		return fmt.Errorf("-fault %v outside [0,1]", *fault)
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout %v must be non-negative", *timeout)
	}
	// Per-class probabilities: -fault sets all three, -fault-<class>
	// overrides one (≥ 0 wins over the shared default).
	classProb := func(name string, class float64) (float64, error) {
		if class < 0 {
			return *fault, nil
		}
		if class > 1 {
			return 0, fmt.Errorf("-fault-%s %v outside [0,1]", name, class)
		}
		return class, nil
	}
	failP, err := classProb("fail", *faultFail)
	if err != nil {
		return err
	}
	stallP, err := classProb("stall", *faultStall)
	if err != nil {
		return err
	}
	outlierP, err := classProb("outlier", *faultOutlier)
	if err != nil {
		return err
	}
	if *faultShard < 0 || *faultShard > 1 {
		return fmt.Errorf("-fault-shard %v outside [0,1]", *faultShard)
	}
	if *hedge != 0 && *hedge < 1 {
		return fmt.Errorf("-hedge %v must be 0 (off) or ≥ 1", *hedge)
	}
	if (*faultShard > 0 || *hedge > 0) && *shards < 2 {
		return fmt.Errorf("-fault-shard/-hedge need -shards ≥ 2, got %d", *shards)
	}
	if failP > 0 || stallP > 0 || outlierP > 0 || *faultShard > 0 {
		scale.Fault = server.FaultSpec{
			Seed:          *faultSeed,
			FailProb:      failP,
			StallProb:     stallP,
			OutlierProb:   outlierP,
			CrashProb:     *faultShard,
			StragglerProb: *faultShard,
		}
	}
	if *faultShard > 0 {
		// Shard chaos without remediation would just kill every sweep;
		// default to one in-place retry per shard and a quarter of the
		// cluster as the fault budget.
		scale.ShardRetries = 1
		if b := *shards / 4; b > 0 {
			scale.ShardFaultBudget = b
		} else {
			scale.ShardFaultBudget = 1
		}
	}
	scale.HedgeFactor = *hedge
	if *epochOps < 0 || *migCost < 0 || *migBudget < 0 {
		return fmt.Errorf("-epoch-ops/-migration-cost/-migration-budget must be non-negative")
	}
	scale.EpochOps = *epochOps
	scale.MigrationCostPerByte = *migCost
	scale.MigrationBudget = *migBudget
	scale.RunTimeout = simclock.Duration(*timeout * float64(simclock.Second))
	scale.DisableBatchReplay = *noBatch
	if *metrics != "" {
		sink := obs.NewSink()
		scale.Obs = sink
		// The dump runs on every exit path: a sweep that dies mid-run
		// (an injected fault, a timeout) still reports what it observed.
		defer func() {
			if err := dumpMetrics(*metrics, sink, stderr); err != nil {
				fmt.Fprintln(stderr, "mnemo-bench: -metrics:", err)
			}
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "mnemo-bench: -memprofile:", err)
			}
			f.Close()
		}()
	}

	if *tracePath != "" {
		if len(fs.Args()) > 0 {
			return fmt.Errorf("-trace replays the given file; experiment names do not apply")
		}
		return runTrace(*tracePath, scale, *seed, stdout, stderr)
	}

	selected := fs.Args()
	if len(selected) == 0 {
		for _, e := range all {
			selected = append(selected, e.name)
		}
	}
	byName := map[string]experiment{}
	for _, e := range all {
		byName[e.name] = e
	}
	for _, name := range selected {
		e, ok := byName[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q", name)
		}
		start := time.Now()
		fmt.Fprintf(stdout, "\n######## %s (scale=%s seed=%d) ########\n", e.name, scale.Name, *seed)
		if err := e.run(scale, *seed, stdout); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintf(stderr, "[%s done in %v]\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
