package main

// Tests of the -trace flag: streamed .mtrc replay against the
// FastMem/SlowMem baseline pair on every engine.

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"mnemo/internal/trace"
	"mnemo/internal/ycsb"
)

func writeBenchTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.mtrc")
	_, err := trace.GenerateFile(ycsb.Spec{
		Name: "bench_trace", Keys: 50, Requests: 500,
		Dist:      ycsb.DistSpec{Kind: ycsb.Uniform},
		ReadRatio: 0.9, Sizes: ycsb.SizeThumbnail, Seed: 11,
	}, path)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTraceFlag(t *testing.T) {
	path := writeBenchTrace(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quick", "-trace", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "trace bench_trace: 50 keys, 500 requests") {
		t.Fatalf("trace summary missing:\n%.200s", out)
	}
	for _, want := range []string{"redislike", "memcachedlike", "dynamolike", "FastMem", "SlowMem", "ops/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay report missing %q", want)
		}
	}
	if !strings.Contains(stderr.String(), "[trace replay done in") {
		t.Error("timing line missing")
	}
}

func TestRunTraceFlagErrors(t *testing.T) {
	path := writeBenchTrace(t)
	for _, args := range [][]string{
		{"-trace", filepath.Join(t.TempDir(), "absent.mtrc")},
		{"-trace", path, "table1"}, // experiment names do not apply
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
