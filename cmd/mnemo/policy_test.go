package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnemo"
)

func TestRunPolicyFlag(t *testing.T) {
	for _, policy := range []string{"mnemot", "tahoe", "freqdecay", "pagesample", "knapsack", "standalone"} {
		var stdout, stderr bytes.Buffer
		err := run([]string{
			"-workload", "trending", "-policy", policy,
			"-keys", "200", "-requests", "2000", "-o", "",
		}, strings.NewReader(""), &stdout, &stderr)
		if err != nil {
			t.Fatalf("-policy %s: %v", policy, err)
		}
	}
}

func TestRunListPolicies(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list-policies"}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"touch", "mnemot", "tahoe", "freqdecay", "pagesample", "knapsack"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("catalog missing %q:\n%s", want, stdout.String())
		}
	}
	// Tunable policies list their parameter spaces: name, bounds, scale
	// and default — the surface cmd/mnemo-tune searches.
	for _, want := range []string{"anchor", "rungs", "decay", "rate", "default 3", "[0, 1]", "log"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("catalog missing parameter detail %q:\n%s", want, stdout.String())
		}
	}
}

// -config replays a tuned spec bit-identically; a tampered expectation
// is rejected.
func TestRunConfigReplay(t *testing.T) {
	recipe := mnemo.TuneWorkloadRecipe{Name: "trending", Seed: 5, Keys: 150, Requests: 2000}
	_, spec, err := mnemo.TuneWithSpec(context.Background(), recipe,
		mnemo.Options{SLO: 0.10, Seed: 42},
		mnemo.TuneOptions{Budget: 8, SearchSeed: 3, Policies: []string{"mnemot", "knapsack"}})
	if err != nil {
		t.Fatalf("TuneWithSpec: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "tuned.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-config", path, "-o", "-"}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("-config replay: %v", err)
	}
	if !strings.Contains(stderr.String(), "bit-identically") {
		t.Errorf("replay confirmation missing:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "cost_factor") {
		t.Errorf("replayed curve csv missing on stdout:\n%.200s", stdout.String())
	}

	// Tamper with the expected outcome: the replay must fail loudly.
	spec.Expected.FastBytes++
	tampered := filepath.Join(dir, "tampered.json")
	tf, err := os.Create(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Encode(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	stdout.Reset()
	stderr.Reset()
	err = run([]string{"-config", tampered, "-o", ""}, strings.NewReader(""), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("tampered spec not rejected: %v", err)
	}
}

func TestRunCompare(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.html")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-keys", "200", "-requests", "2000",
		"-compare", "mnemot, tahoe,freqdecay", "-html", out, "-o", "",
	}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "policy comparison (1 baseline measurement)") {
		t.Errorf("comparison table missing or re-measured:\n%s", stderr.String())
	}
	for _, want := range []string{"touch", "mnemot", "tahoe", "freqdecay"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("comparison missing policy %q", want)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Policy comparison") {
		t.Error("html report missing comparison section")
	}
}

func TestResolvePolicyName(t *testing.T) {
	cases := []struct {
		policy, mode string
		want         string
		wantErr      bool
	}{
		{"", "", "touch", false},
		{"mnemot", "", "mnemot", false},
		{"", "standalone", "touch", false},
		{"", "mnemot", "mnemot", false},
		{"mnemot", "mnemot", "mnemot", false},
		{"touch", "mnemot", "", true},
		{"", "bogus", "", true},
	}
	for _, c := range cases {
		got, err := resolvePolicyName(c.policy, c.mode)
		if c.wantErr {
			if err == nil {
				t.Errorf("(%q,%q): no error", c.policy, c.mode)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("(%q,%q) = %q, %v; want %q", c.policy, c.mode, got, err, c.want)
		}
	}
}

func TestRunPolicyModeConflict(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-policy", "touch", "-mode", "mnemot",
		"-keys", "10", "-requests", "10",
	}, strings.NewReader(""), &stdout, &stderr)
	if err == nil {
		t.Fatal("conflicting -policy/-mode accepted")
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-policy", "bogus",
		"-keys", "10", "-requests", "10",
	}, strings.NewReader(""), &stdout, &stderr)
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("error %q does not name the problem", err)
	}
}
