package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunPolicyFlag(t *testing.T) {
	for _, policy := range []string{"mnemot", "tahoe", "freqdecay", "pagesample", "knapsack", "standalone"} {
		var stdout, stderr bytes.Buffer
		err := run([]string{
			"-workload", "trending", "-policy", policy,
			"-keys", "200", "-requests", "2000", "-o", "",
		}, strings.NewReader(""), &stdout, &stderr)
		if err != nil {
			t.Fatalf("-policy %s: %v", policy, err)
		}
	}
}

func TestRunListPolicies(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list-policies"}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"touch", "mnemot", "tahoe", "freqdecay", "pagesample", "knapsack"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("catalog missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestRunCompare(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.html")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-keys", "200", "-requests", "2000",
		"-compare", "mnemot, tahoe,freqdecay", "-html", out, "-o", "",
	}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "policy comparison (1 baseline measurement)") {
		t.Errorf("comparison table missing or re-measured:\n%s", stderr.String())
	}
	for _, want := range []string{"touch", "mnemot", "tahoe", "freqdecay"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("comparison missing policy %q", want)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Policy comparison") {
		t.Error("html report missing comparison section")
	}
}

func TestResolvePolicyName(t *testing.T) {
	cases := []struct {
		policy, mode string
		want         string
		wantErr      bool
	}{
		{"", "", "touch", false},
		{"mnemot", "", "mnemot", false},
		{"", "standalone", "touch", false},
		{"", "mnemot", "mnemot", false},
		{"mnemot", "mnemot", "mnemot", false},
		{"touch", "mnemot", "", true},
		{"", "bogus", "", true},
	}
	for _, c := range cases {
		got, err := resolvePolicyName(c.policy, c.mode)
		if c.wantErr {
			if err == nil {
				t.Errorf("(%q,%q): no error", c.policy, c.mode)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("(%q,%q) = %q, %v; want %q", c.policy, c.mode, got, err, c.want)
		}
	}
}

func TestRunPolicyModeConflict(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-policy", "touch", "-mode", "mnemot",
		"-keys", "10", "-requests", "10",
	}, strings.NewReader(""), &stdout, &stderr)
	if err == nil {
		t.Fatal("conflicting -policy/-mode accepted")
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-policy", "bogus",
		"-keys", "10", "-requests", "10",
	}, strings.NewReader(""), &stdout, &stderr)
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("error %q does not name the problem", err)
	}
}
