package main

// Tests of the -trace flag: profiling a binary .mtrc trace streamed
// from disk through the standard pipeline.

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"mnemo/internal/trace"
	"mnemo/internal/ycsb"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cli.mtrc")
	_, err := trace.GenerateFile(ycsb.Spec{
		Name: "cli_trace", Keys: 60, Requests: 600,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 1.0, Sizes: ycsb.SizeThumbnail, Seed: 3,
	}, path)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTraceFlag(t *testing.T) {
	path := writeTestTrace(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-trace", path, "-o", "-"}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "key,est_throughput_ops,cost_factor") {
		t.Fatalf("curve csv missing from stdout:\n%.200s", out)
	}
	if !strings.Contains(stderr.String(), "cli_trace") {
		t.Error("workload name missing from progress output")
	}
}

func TestRunTraceFlagErrors(t *testing.T) {
	path := writeTestTrace(t)
	cases := [][]string{
		{"-trace", filepath.Join(t.TempDir(), "absent.mtrc")},
		{"-trace", path, "-monitor"},
		{"-trace", path, "-keys", "10"},
		{"-trace", path, "-requests", "10"},
		{"-trace", path, "-epoch-ops", "256"}, // adaptive replay needs a materialized trace
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, strings.NewReader(""), &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
