package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// jsonUnmarshal is a tiny indirection so the test reads naturally.
func jsonUnmarshal(data []byte, v interface{}) error { return json.Unmarshal(data, v) }

// osReadFile is aliased for symmetry with jsonUnmarshal.
func osReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func TestRunTrendingToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-store", "redislike",
		"-keys", "300", "-requests", "3000", "-slo", "0.10",
	}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout.String(), "key,est_throughput_ops,cost_factor") {
		t.Errorf("stdout missing csv header: %q", stdout.String()[:40])
	}
	if !strings.Contains(stderr.String(), "advice") {
		t.Errorf("stderr missing advice: %s", stderr.String())
	}
	// 300 keys → 302 csv lines (header + origin + per-key rows).
	lines := strings.Count(stdout.String(), "\n")
	if lines != 302 {
		t.Errorf("csv lines = %d, want 302", lines)
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "curve.csv")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "timeline", "-store", "memcachedlike", "-mode", "mnemot",
		"-keys", "200", "-requests", "2000", "-o", out, "-plot",
	}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "curve written to") {
		t.Error("file write not reported")
	}
	if !strings.Contains(stderr.String(), "mnemot ordering") {
		t.Error("plot missing ordering label")
	}
	if stdout.Len() != 0 {
		t.Error("stdout should be empty when writing to a file")
	}
}

func TestRunSkipsOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-keys", "200", "-requests", "2000", "-o", "",
	}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Error("output not skipped")
	}
}

func TestRunStdinWorkload(t *testing.T) {
	trace := "mnemo-workload,v1,mini\nrec,k1,100000\nrec,k2,100000\nop,k1,read\nop,k2,read\nop,k1,read\n"
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workload", "-", "-slo", "0", "-o", "-"},
		strings.NewReader(trace), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "workload mini") {
		t.Errorf("stdin workload not loaded: %s", stderr.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "ycsb_c", "-store", "redislike",
		"-keys", "200", "-requests", "2000", "-json",
	}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	var summary map[string]interface{}
	if err := jsonUnmarshal(stdout.Bytes(), &summary); err != nil {
		t.Fatalf("stdout not JSON: %v", err)
	}
	if summary["workload"] != "ycsb_c" {
		t.Errorf("workload = %v", summary["workload"])
	}
	if _, ok := summary["advice"]; !ok {
		t.Error("advice missing from JSON")
	}
	if _, ok := summary["curve"]; !ok {
		t.Error("curve missing from JSON")
	}
}

func TestRunHTMLReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.html")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-keys", "200", "-requests", "2000",
		"-html", out, "-o", "",
	}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := osReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "Advised sizing", "Measured baselines", "trending"} {
		if !strings.Contains(html, want) {
			t.Errorf("html missing %q", want)
		}
	}
	if !strings.Contains(stderr.String(), "html report written") {
		t.Error("html write not reported")
	}
}

func TestRunYCSBFWorkload(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "ycsb_f", "-keys", "100", "-requests", "1000", "-o", "",
	}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "workload ycsb_f") {
		t.Error("F workload not loaded")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-workload", "bogus"},
		{"-store", "bogus", "-keys", "10", "-requests", "10"},
		{"-mode", "bogus", "-keys", "10", "-requests", "10"},
		{"-workload", "trending", "-p", "7", "-keys", "10", "-requests", "10"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, strings.NewReader(""), &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunMonitorImport(t *testing.T) {
	var capture strings.Builder
	capture.WriteString("OK\n")
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("item:%d", i%8)
		fmt.Fprintf(&capture, "1.0 [0 x] \"SET\" %q \"payload-payload\"\n", key)
		fmt.Fprintf(&capture, "1.1 [0 x] \"GET\" %q\n", key)
	}
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workload", "-", "-monitor", "-slo", "0.1", "-o", ""},
		strings.NewReader(capture.String()), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "workload redis_monitor") {
		t.Errorf("monitor workload not profiled: %s", stderr.String())
	}
}

func TestRunMonitorRequiresStdin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-workload", "trending", "-monitor"},
		strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Fatal("-monitor without -workload - accepted")
	}
}

func TestRunBadStdinWorkload(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-workload", "-"}, strings.NewReader("not a csv"), &stdout, &stderr); err == nil {
		t.Fatal("garbage stdin accepted")
	}
}

func TestRunMetricsDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	html := filepath.Join(t.TempDir(), "report.html")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-store", "redislike",
		"-keys", "300", "-requests", "3000", "-o", "",
		"-metrics", path, "-html", html,
	}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := osReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE mnemo_client_runs_total counter",
		`mnemo_server_ops_total{engine="redislike"}`,
		`mnemo_stage_runs_total{stage="measure"} 1`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
	if !strings.Contains(stderr.String(), "== run timeline ==") {
		t.Error("run timeline missing from stderr")
	}
	page, err := osReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "Observability") {
		t.Error("html report missing observability section")
	}
}

func TestRunMetricsToStderr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-store", "redislike",
		"-keys", "200", "-requests", "2000", "-o", "", "-metrics", "-",
	}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "mnemo_client_runs_total") {
		t.Error("metrics missing from stderr with -metrics -")
	}
}
