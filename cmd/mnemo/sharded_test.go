package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunShardsOneGolden is the CLI end of the Shards=1 equivalence
// contract: a one-shard cluster must reproduce the unsharded run's
// curve csv and HTML report byte for byte.
func TestRunShardsOneGolden(t *testing.T) {
	render := func(shards string) (csv string, html []byte) {
		out := filepath.Join(t.TempDir(), "report.html")
		args := []string{
			"-workload", "trending", "-store", "redislike",
			"-keys", "200", "-requests", "2000", "-slo", "0.10",
			"-html", out,
		}
		if shards != "" {
			args = append(args, "-shards", shards)
		}
		var stdout, stderr bytes.Buffer
		if err := run(args, strings.NewReader(""), &stdout, &stderr); err != nil {
			t.Fatal(err)
		}
		data, err := osReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return stdout.String(), data
	}
	baseCSV, baseHTML := render("")
	oneCSV, oneHTML := render("1")
	if baseCSV != oneCSV {
		t.Error("-shards 1 curve csv differs from unsharded")
	}
	if !bytes.Equal(baseHTML, oneHTML) {
		t.Error("-shards 1 HTML report differs from unsharded")
	}
}

func TestRunShardsHTMLLayout(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.html")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "trending", "-keys", "200", "-requests", "2000",
		"-shards", "4", "-html", out, "-o", "",
	}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := osReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{"Cluster shard layout", "cost R(p)", "shard"} {
		if !strings.Contains(html, want) {
			t.Errorf("html missing %q", want)
		}
	}
	if !strings.Contains(stderr.String(), "cluster: 4 consistent-hash shards") {
		t.Errorf("stderr missing cluster note: %s", stderr.String())
	}
}
