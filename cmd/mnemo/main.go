// Command mnemo is the consultant CLI: it profiles a key-value store
// workload on the emulated hybrid memory testbed and emits the paper's
// three-column cost/performance csv, an ASCII rendering of the estimate
// curve, and (with -slo) the advised capacity sizing.
//
// Usage:
//
//	mnemo [flags]
//
//	-workload name    Table III workload (trending, news_feed, timeline,
//	                  edit_thumbnail, trending_preview), or "-" to read a
//	                  mnemo-workload v1 csv from stdin
//	-trace file       profile a binary .mtrc trace (cmd/workloadgen
//	                  -o trace.mtrc) streamed frame by frame — traces far
//	                  larger than RAM replay in O(frame) memory; overrides
//	                  -workload, incompatible with -epoch-ops
//	-store name       redislike | memcachedlike | dynamolike
//	-policy name      tiering policy (see -list-policies; default touch)
//	-compare a,b,...  profile extra policies against the same baseline
//	                  measurement; comparison lands on stderr and in -html
//	-list-policies    print the tiering-policy catalog (with each
//	                  policy's tunable parameter space) and exit
//	-config file      replay a tuned-config spec written by
//	                  cmd/mnemo-tune and verify its advised outcome
//	                  bit-identically; composes with -o for the curve
//	-mode name        deprecated alias: standalone | mnemot
//	-slo pct          permissible slowdown, e.g. 0.10 (0 = no advice)
//	-p factor         SlowMem:FastMem per-byte price ratio (default 0.2)
//	-runs n           repetitions per baseline measurement
//	-seed n           deterministic seed
//	-keys n           key-space override (0 = Table III default)
//	-requests n       trace-length override (0 = Table III default)
//	-shards n         replay across a consistent-hash cluster of n
//	                  deployments (0 = single deployment; -html gains a
//	                  per-shard layout section when n ≥ 2)
//	-shard-retries n  with -shards ≥ 2: in-place retries per faulted shard
//	-shard-budget n   with -shards ≥ 2: dead shards tolerated per run —
//	                  within budget the run degrades to a partial merge of
//	                  the surviving shards instead of failing
//	-hedge f          with -shards ≥ 2: speculatively re-run shards slower
//	                  than f× the median shard runtime; the faster
//	                  execution wins (0 = off, else ≥ 1)
//	-epoch-ops n      with an adaptive -policy (adaptive-freq,
//	                  adaptive-mnemot): additionally measure the advised
//	                  placement with epoch-based online migration every n
//	                  requests, static-vs-adaptive, and report the gain
//	                  (stderr + -html section)
//	-migration-cost f simulated migration charge in ns per payload byte
//	                  (with -epoch-ops; default free)
//	-migration-budget n  cap on migrated payload bytes per epoch boundary
//	                  (with -epoch-ops; 0 = unlimited)
//	-o file           write the curve csv here (default stdout, "" = skip)
//	-plot             also render the curve as an ASCII plot on stderr
//	-json             emit a JSON report summary on stdout instead of csv
//	-html file        also write a standalone HTML report (SVG charts)
//	-monitor          parse stdin as a Redis MONITOR capture (-workload -)
//	-default-size n   record size for keys a capture never writes
//	-metrics file     dump run metrics (Prometheus text format) to file
//	                  ("-" = stderr), plus the run timeline on stderr
//
// Example:
//
//	mnemo -workload trending -store redislike -slo 0.10 -o curve.csv
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mnemo"
	"mnemo/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mnemo:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mnemo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload     = fs.String("workload", "trending", "Table III workload name, or '-' for csv on stdin")
		store        = fs.String("store", "redislike", "store engine: redislike|memcachedlike|dynamolike")
		policy       = fs.String("policy", "", "tiering policy (see -list-policies; default touch)")
		compare      = fs.String("compare", "", "comma-separated extra policies to profile on the same baselines")
		listPol      = fs.Bool("list-policies", false, "print the tiering-policy catalog and exit")
		mode         = fs.String("mode", "", "deprecated alias for -policy: standalone|mnemot")
		slo          = fs.Float64("slo", 0.10, "permissible slowdown for the advisor (0 disables)")
		price        = fs.Float64("p", mnemo.DefaultPriceFactor, "SlowMem:FastMem per-byte price ratio")
		runs         = fs.Int("runs", 1, "repetitions per baseline measurement")
		seed         = fs.Int64("seed", 42, "deterministic seed")
		keys         = fs.Int("keys", 0, "key-space size override")
		requests     = fs.Int("requests", 0, "request-count override")
		shards       = fs.Int("shards", 0, "replay across a consistent-hash cluster of `n` deployments (0 = single deployment)")
		shardRetries = fs.Int("shard-retries", 0, "with -shards ≥ 2: in-place retries per faulted shard")
		shardBudget  = fs.Int("shard-budget", 0, "with -shards ≥ 2: dead shards tolerated before a run fails (partial merge within budget)")
		hedge        = fs.Float64("hedge", 0, "with -shards ≥ 2: hedge shards slower than `factor`× the median runtime (0 = off, else ≥ 1)")
		epochOps     = fs.Int("epoch-ops", 0, "with an adaptive -policy: measure advised placement with migration every `n` requests (0 = off)")
		migCost      = fs.Float64("migration-cost", 0, "simulated migration charge in `ns` per payload byte (with -epoch-ops)")
		migBudget    = fs.Int64("migration-budget", 0, "cap on migrated payload `bytes` per epoch boundary (0 = unlimited)")
		outPath      = fs.String("o", "-", "curve csv destination ('-' = stdout, '' = skip)")
		plot         = fs.Bool("plot", false, "render the curve as an ASCII plot on stderr")
		jsonOut      = fs.Bool("json", false, "emit a JSON report summary on stdout instead of the csv")
		htmlOut      = fs.String("html", "", "also write a standalone HTML report to this file")
		tracePath    = fs.String("trace", "", "profile a binary .mtrc trace file (streamed; overrides -workload)")
		monitor      = fs.Bool("monitor", false, "with -workload -, parse stdin as a Redis MONITOR capture")
		defSize      = fs.Int("default-size", 1024, "record size for keys a MONITOR capture never writes")
		metrics      = fs.String("metrics", "", "dump run metrics (Prometheus text format) to this file ('-' = stderr)")
		configPath   = fs.String("config", "", "replay a tuned-config spec (cmd/mnemo-tune JSON) and verify it bit-identically")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listPol {
		return report.PolicyCatalog(stdout, policyCatalog())
	}
	if *configPath != "" {
		return replayTunedConfig(*configPath, *outPath, stdout, stderr)
	}
	policyName, err := resolvePolicyName(*policy, *mode)
	if err != nil {
		return err
	}

	var w *mnemo.Workload
	switch {
	case *tracePath != "":
		if *monitor {
			return fmt.Errorf("-trace and -monitor are mutually exclusive")
		}
		if *keys != 0 || *requests != 0 {
			return fmt.Errorf("-trace carries its own dimensions; -keys/-requests do not apply")
		}
		w, err = mnemo.OpenTrace(*tracePath)
	case *monitor:
		if *workload != "-" {
			return fmt.Errorf("-monitor requires -workload - (capture on stdin)")
		}
		w, err = mnemo.LoadRedisMonitor(stdin, *defSize)
	default:
		w, err = loadWorkload(*workload, *seed, *keys, *requests, stdin)
	}
	if err != nil {
		return err
	}
	engine, ok := mnemo.EngineByName(*store)
	if !ok {
		return fmt.Errorf("unknown store %q", *store)
	}
	opts := mnemo.Options{
		Store:                engine,
		Seed:                 *seed,
		Runs:                 *runs,
		PriceFactor:          *price,
		SLO:                  *slo,
		Policy:               policyName,
		Shards:               *shards,
		ShardRetries:         *shardRetries,
		ShardFaultBudget:     *shardBudget,
		HedgeFactor:          *hedge,
		EpochOps:             *epochOps,
		MigrationCostPerByte: *migCost,
		MigrationBudget:      *migBudget,
	}
	var sink *mnemo.Sink
	if *metrics != "" {
		sink = mnemo.NewSink()
		opts.Obs = sink
		// Dump whatever was collected even when profiling fails partway —
		// a failed run's metrics are the interesting ones.
		defer func() {
			if err := dumpMetrics(*metrics, sink, stderr); err != nil {
				fmt.Fprintln(stderr, "mnemo: -metrics:", err)
			}
		}()
	}

	var rep *mnemo.Report
	var compared []*mnemo.Report
	if *compare != "" {
		rep, compared, err = runComparison(w, opts, policyName, *compare, *slo, stderr)
	} else {
		rep, err = mnemo.Profile(w, opts)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(stderr, "workload %s on %s: %d keys, %d requests, dataset %s\n",
		w.Spec.Name, *store, len(w.Dataset.Records), w.RequestCount(),
		report.FormatBytes(w.Dataset.TotalBytes))
	if *shards >= 2 {
		fmt.Fprintf(stderr, "cluster: %d consistent-hash shards, stats merged deterministically\n", *shards)
	}
	if rep.Degraded {
		fmt.Fprintf(stderr, "DEGRADED: report aggregated from partial measurements\n")
		for _, r := range rep.DegradedReasons {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
	}
	fmt.Fprintf(stderr, "baselines: FastMem %.0f ops/s, SlowMem %.0f ops/s (%.2fx slowdown)\n",
		rep.Baselines.Fast.ThroughputOpsSec, rep.Baselines.Slow.ThroughputOpsSec,
		rep.Baselines.SlowdownAllSlow())

	if rep.Advice != nil {
		a := rep.Advice
		fmt.Fprintf(stderr,
			"advice (%.0f%% slowdown SLO): place %d keys (%s) in FastMem → cost %.3f of FastMem-only (%.0f%% savings)\n",
			a.MaxSlowdown*100, a.Point.KeysInFast, report.FormatBytes(a.Point.FastBytes),
			a.Point.CostFactor, a.CostSavings*100)
	}

	var adaptive *mnemo.AdaptiveComparison
	if *epochOps > 0 {
		if rep.Advice == nil {
			return fmt.Errorf("-epoch-ops needs an advised sizing to measure; set -slo > 0")
		}
		adaptive, err = mnemo.MeasureAdaptive(context.Background(), w, rep, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr,
			"adaptive (%s, epoch %d ops): static %s → adaptive %s (%+.1f%% runtime gain; %d epochs, %d moves, %s migrated, %v migration cost)\n",
			opts.Policy, *epochOps, adaptive.Static.Runtime, adaptive.Adaptive.Runtime,
			adaptive.RuntimeGain()*100, adaptive.Adaptive.Epochs, adaptive.Adaptive.MovesApplied,
			report.FormatBytes(adaptive.Adaptive.MigratedBytes), mnemo.Duration(adaptive.Adaptive.MigrationNs))
	}

	if *plot {
		if err := plotCurve(stderr, rep.Curve); err != nil {
			return err
		}
	}

	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		if err := writeHTMLReport(f, rep, w, compared, adaptive, sink, opts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "html report written to %s\n", *htmlOut)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep.Summary(16))
	}

	switch *outPath {
	case "":
		return nil
	case "-":
		return rep.Curve.WriteCSV(stdout)
	default:
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.Curve.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "curve written to %s\n", *outPath)
		return nil
	}
}

// dumpMetrics writes the sink's registry in Prometheus text format to
// path ("-" = stderr), then the run timeline on stderr.
func dumpMetrics(path string, sink *mnemo.Sink, stderr io.Writer) error {
	var out io.Writer = stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := sink.Registry().WritePrometheus(out); err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(stderr, "metrics written to %s\n", path)
	}
	return report.ObsTimeline(stderr, sink)
}

// replayTunedConfig regenerates a tuned spec's workload, re-evaluates
// the tuned policy configuration and verifies the advised outcome
// matches the spec's expected block bit-identically — the reproduction
// contract of cmd/mnemo-tune. The replayed estimate curve lands on
// outPath like a normal profiling run's.
func replayTunedConfig(path, outPath string, stdout, stderr io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	spec, err := mnemo.DecodeTuneSpec(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("-config %s: %w", path, err)
	}
	ev, err := mnemo.ReplayTuneSpec(context.Background(), spec)
	if err != nil {
		return fmt.Errorf("-config %s: %w", path, err)
	}
	fmt.Fprintf(stderr, "tuned spec %s: %s (seed %d) on %s, policy %s\n",
		path, spec.Workload.Name, spec.Workload.Seed, spec.Engine, ev.PolicyName)
	fmt.Fprintf(stderr,
		"replay matches the spec bit-identically: cost %.4f of FastMem-only, slowdown %.4f (SLO %.0f%%), %s FastMem (%d keys)\n",
		ev.CostFactor, ev.Slowdown, spec.SLO*100, report.FormatBytes(ev.FastBytes), ev.KeysInFast)
	switch outPath {
	case "":
		return nil
	case "-":
		return ev.Curve().WriteCSV(stdout)
	default:
		out, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := ev.Curve().WriteCSV(out); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "curve written to %s\n", outPath)
		return nil
	}
}

// policyCatalog adapts the public policy listing (descriptions plus
// tunable parameter spaces) for -list-policies rendering.
func policyCatalog() []report.CatalogEntry {
	var out []report.CatalogEntry
	for _, p := range mnemo.Policies() {
		e := report.CatalogEntry{Name: p.Name, Description: p.Description}
		for _, pr := range p.Params {
			e.Params = append(e.Params, report.CatalogParam{
				Name: pr.Name, Min: pr.Min, Max: pr.Max, Default: pr.Default,
				Integer: pr.Integer, Log: pr.Log, Description: pr.Description,
			})
		}
		out = append(out, e)
	}
	return out
}

// resolvePolicyName folds the deprecated -mode spelling into -policy.
func resolvePolicyName(policy, mode string) (string, error) {
	mapped := ""
	switch mode {
	case "":
	case "standalone":
		mapped = "touch"
	case "mnemot":
		mapped = "mnemot"
	default:
		return "", fmt.Errorf("unknown mode %q", mode)
	}
	if mapped != "" {
		if policy != "" && policy != mapped {
			return "", fmt.Errorf("-mode %s conflicts with -policy %s", mode, policy)
		}
		return mapped, nil
	}
	if policy == "" {
		return "touch", nil
	}
	return policy, nil
}

// runComparison profiles the primary policy plus every -compare policy
// through one session (a single baseline measurement), prints the
// comparison table on stderr, and returns the primary report first.
func runComparison(w *mnemo.Workload, opts mnemo.Options, primary, compare string, slo float64, stderr io.Writer) (*mnemo.Report, []*mnemo.Report, error) {
	names := []string{primary}
	for _, n := range strings.Split(compare, ",") {
		n = strings.TrimSpace(n)
		if n == "" || n == primary {
			continue
		}
		names = append(names, n)
	}
	policies := make([]mnemo.TieringPolicy, 0, len(names))
	for _, n := range names {
		p, err := mnemo.PolicyByName(n, opts.Seed)
		if err != nil {
			return nil, nil, err
		}
		policies = append(policies, p)
	}
	session, err := mnemo.NewSession(w, opts)
	if err != nil {
		return nil, nil, err
	}
	reps, err := session.Compare(context.Background(), slo, policies...)
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable(fmt.Sprintf("policy comparison (%d baseline measurement)", session.MeasureCount()),
		"policy", "est ops/s @ cost 0.5", "advised cost", "savings")
	for _, r := range reps {
		cost, savings := "-", "-"
		if r.Advice != nil {
			cost = fmt.Sprintf("%.3f", r.Advice.Point.CostFactor)
			savings = fmt.Sprintf("%.1f%%", r.Advice.CostSavings*100)
		}
		t.AddRow(r.Policy, fmt.Sprintf("%.0f", r.Curve.PointAtCost(0.5).EstThroughputOps), cost, savings)
	}
	if err := t.Render(stderr); err != nil {
		return nil, nil, err
	}
	return reps[0], reps, nil
}

func loadWorkload(name string, seed int64, keys, requests int, stdin io.Reader) (*mnemo.Workload, error) {
	if name == "-" {
		return mnemo.LoadWorkloadCSV(stdin)
	}
	w, err := mnemo.WorkloadByNameSized(name, seed, keys, requests)
	if err != nil {
		return nil, fmt.Errorf("%w (or '-' for csv on stdin)", err)
	}
	return w, nil
}

func plotCurve(w io.Writer, c *mnemo.Curve) error {
	var xs, ys []float64
	step := len(c.Points) / 120
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(c.Points); i += step {
		xs = append(xs, c.Points[i].CostFactor)
		ys = append(ys, c.Points[i].EstThroughputOps)
	}
	return report.Plot(w, fmt.Sprintf("%s on %s (%s ordering)", c.Workload, c.Engine, c.Ordering),
		"memory cost factor R(p)", "estimated ops/s", 72, 18,
		report.Series{Label: "estimate", X: xs, Y: ys})
}
