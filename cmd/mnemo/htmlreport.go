package main

import (
	"fmt"
	"io"
	"strings"

	"mnemo"
	"mnemo/internal/report"
	"mnemo/internal/shard"
)

// buildHTMLReport assembles the shareable consulting artifact: workload
// profile, measured baselines, the advised sizing, the estimate curve as
// an SVG chart, the cluster shard layout (when -shards ≥ 2), and — when
// -compare profiled several policies — the per-policy comparison
// overlay.
func buildHTMLReport(rep *mnemo.Report, w *mnemo.Workload, compared []*mnemo.Report, adaptive *mnemo.AdaptiveComparison, sink *mnemo.Sink, opts mnemo.Options) *report.HTMLReport {
	doc := &report.HTMLReport{
		Title: fmt.Sprintf("Mnemo sizing report — %s on %s", rep.Workload, rep.Engine),
	}

	// Workload profile.
	prof := mnemo.DescribeWorkload(w)
	doc.Sections = append(doc.Sections, report.HTMLSection{
		Heading: "Workload",
		Paragraphs: []string{
			fmt.Sprintf("%d keys, %d requests, %.0f%% reads, %s dataset.",
				prof.Keys, prof.Requests, prof.ReadFraction*100, report.FormatBytes(prof.TotalBytes)),
			fmt.Sprintf("Hot set: 90%% of requests hit %d keys (%s); access skew (Gini) %.3f.",
				prof.HotKeys90, report.FormatBytes(prof.HotBytes90), prof.Gini),
		},
	})

	// Baselines.
	bt := report.NewTable("", "placement", "throughput ops/s", "avg read µs", "avg write µs", "p99 µs")
	b := rep.Baselines
	bt.AddRow("all FastMem", fmt.Sprintf("%.0f", b.Fast.ThroughputOpsSec),
		fmt.Sprintf("%.1f", b.Fast.AvgReadNs/1000), fmt.Sprintf("%.1f", b.Fast.AvgWriteNs/1000),
		fmt.Sprintf("%.1f", b.Fast.P99Ns/1000))
	bt.AddRow("all SlowMem", fmt.Sprintf("%.0f", b.Slow.ThroughputOpsSec),
		fmt.Sprintf("%.1f", b.Slow.AvgReadNs/1000), fmt.Sprintf("%.1f", b.Slow.AvgWriteNs/1000),
		fmt.Sprintf("%.1f", b.Slow.P99Ns/1000))
	doc.Sections = append(doc.Sections, report.HTMLSection{
		Heading: "Measured baselines",
		Paragraphs: []string{fmt.Sprintf(
			"Running everything from SlowMem slows this workload down %.2fx.",
			b.SlowdownAllSlow())},
		Table: bt,
	})

	// Advice.
	if rep.Advice != nil {
		a := rep.Advice
		at := report.NewTable("", "quantity", "value")
		at.AddRow("permissible slowdown", fmt.Sprintf("%.0f%%", a.MaxSlowdown*100))
		at.AddRow("keys in FastMem", a.Point.KeysInFast)
		at.AddRow("FastMem capacity", report.FormatBytes(a.Point.FastBytes))
		at.AddRow("memory cost factor", fmt.Sprintf("%.3f of DRAM-only", a.Point.CostFactor))
		at.AddRow("cost savings", fmt.Sprintf("%.0f%%", a.CostSavings*100))
		at.AddRow("estimated throughput", fmt.Sprintf("%.0f ops/s", a.Point.EstThroughputOps))
		doc.Sections = append(doc.Sections, report.HTMLSection{
			Heading: "Advised sizing",
			Table:   at,
		})
	}

	// Curve chart.
	var xs, ys []float64
	step := len(rep.Curve.Points) / 200
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(rep.Curve.Points); i += step {
		p := rep.Curve.Points[i]
		xs = append(xs, p.CostFactor)
		ys = append(ys, p.EstThroughputOps)
	}
	last := rep.Curve.FastOnly()
	xs = append(xs, last.CostFactor)
	ys = append(ys, last.EstThroughputOps)
	doc.Sections = append(doc.Sections, report.HTMLSection{
		Heading: "Cost / performance estimate",
		Paragraphs: []string{
			"Each point sizes FastMem to hold one more key of the " +
				rep.Curve.Ordering + " ordering; pick any point that fits your budget.",
		},
		Chart: &report.Chart{
			XLabel: "memory cost factor R(p)",
			YLabel: "estimated throughput (ops/s)",
			Series: []report.Series{{Label: "estimate", X: xs, Y: ys}},
		},
	})

	// Cluster layout: with -shards ≥ 2, show how the ring distributes
	// the dataset — and the advised FastMem slice — across shards.
	if opts.Shards >= 2 {
		if rows, err := shardLayoutRows(rep, w, opts.Shards); err == nil {
			price := opts.PriceFactor
			if price <= 0 || price > 1 {
				price = mnemo.DefaultPriceFactor
			}
			doc.Sections = append(doc.Sections, report.ShardHTMLSection(rows, price))
		}
	}

	// Adaptive tiering: with -epoch-ops, show the static-vs-adaptive
	// measured runs of the advised placement and the per-epoch migration
	// traffic.
	if adaptive != nil {
		rows := []report.AdaptiveRow{
			{Policy: "static placement", RuntimeNs: float64(adaptive.Static.Runtime),
				ThroughputOps: adaptive.Static.ThroughputOpsSec},
			{Policy: opts.Policy, Adaptive: true, RuntimeNs: float64(adaptive.Adaptive.Runtime),
				ThroughputOps: adaptive.Adaptive.ThroughputOpsSec,
				Epochs:        adaptive.Adaptive.Epochs, Moves: adaptive.Adaptive.MovesApplied,
				MigratedBytes: adaptive.Adaptive.MigratedBytes, MigrationNs: adaptive.Adaptive.MigrationNs},
		}
		var series []report.AdaptiveEpochSeries
		if tr := adaptive.Adaptive.EpochTraffic; len(tr) > 0 {
			s := report.AdaptiveEpochSeries{Policy: opts.Policy}
			for _, e := range tr {
				s.Epoch = append(s.Epoch, float64(e.Epoch))
				s.Bytes = append(s.Bytes, float64(e.Bytes))
				s.CostNs = append(s.CostNs, e.CostNs)
			}
			series = append(series, s)
		}
		doc.Sections = append(doc.Sections, report.AdaptiveSection(rows, series))
	}

	// Observability: when the run was instrumented (-metrics), append the
	// metric snapshot and journal summary.
	if sec, ok := report.ObsHTMLSection(sink); ok {
		doc.Sections = append(doc.Sections, sec)
	}

	// Policy comparison overlay.
	if len(compared) > 1 {
		series := make([]report.PolicySeries, len(compared))
		for i, r := range compared {
			s := report.PolicySeries{Policy: r.Policy, AdvisedCost: -1}
			for _, p := range curveSamples(r.Curve) {
				s.X = append(s.X, p.CostFactor)
				s.Y = append(s.Y, p.EstThroughputOps)
			}
			if r.Advice != nil {
				s.AdvisedCost = r.Advice.Point.CostFactor
				s.AdvisedSavings = r.Advice.CostSavings
			}
			series[i] = s
		}
		doc.Sections = append(doc.Sections, report.PolicyComparisonSection(series))
	}
	return doc
}

// curveSamples thins a curve to ≤200 chart points, endpoint included.
func curveSamples(c *mnemo.Curve) []mnemo.CurvePoint {
	step := len(c.Points) / 200
	if step < 1 {
		step = 1
	}
	var out []mnemo.CurvePoint
	for i := 0; i < len(c.Points); i += step {
		out = append(out, c.Points[i])
	}
	return append(out, c.FastOnly())
}

// shardLayoutRows lays the report's advised placement (or, without
// advice, just the dataset) out over the same consistent-hash partition
// the sharded replay used.
func shardLayoutRows(rep *mnemo.Report, w *mnemo.Workload, shards int) ([]report.ShardRow, error) {
	part, err := shard.For(w, shards, 0, !w.Packed().Batchable())
	if err != nil {
		return nil, err
	}
	fast := make([]bool, len(w.Dataset.Records))
	if rep.Advice != nil {
		for _, k := range rep.Ordering.Keys[:rep.Advice.Point.KeysInFast] {
			fast[k.Index] = true
		}
	}
	rows := make([]report.ShardRow, shards)
	for s := range rows {
		rows[s].Shard = s
		rows[s].Requests = part.Subs[s].Requests
	}
	for g, rec := range w.Dataset.Records {
		row := &rows[part.Assign[g]]
		row.Keys++
		row.Bytes += int64(rec.Size)
		if fast[g] {
			row.FastKeys++
			row.FastBytes += int64(rec.Size)
		}
	}
	annotateShardHealth(rows, rep.DegradedReasons)
	return rows, nil
}

// annotateShardHealth marks shard rows named by a degraded report's
// shard-attributed reasons ("FastMem: shard 3: server: injected crash
// fault …"). Reports with no reasons leave every row's Health empty, so
// the shard table renders exactly as before fault domains existed.
func annotateShardHealth(rows []report.ShardRow, reasons []string) {
	for _, reason := range reasons {
		var s int
		rest := reason
		// Strip the baseline prefix, if present.
		if i := strings.Index(rest, ": shard "); i >= 0 {
			rest = rest[i+2:]
		}
		if n, err := fmt.Sscanf(rest, "shard %d:", &s); err != nil || n != 1 || s < 0 || s >= len(rows) {
			continue
		}
		detail := rest
		if i := strings.Index(rest, ": "); i >= 0 {
			detail = rest[i+2:]
		}
		if rows[s].Health == "" {
			rows[s].Health = "dead: " + detail
		}
	}
}

// writeHTMLReport renders the document to w.
func writeHTMLReport(out io.Writer, rep *mnemo.Report, w *mnemo.Workload, compared []*mnemo.Report, adaptive *mnemo.AdaptiveComparison, sink *mnemo.Sink, opts mnemo.Options) error {
	return buildHTMLReport(rep, w, compared, adaptive, sink, opts).Render(out)
}
