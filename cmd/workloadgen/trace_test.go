package main

// Tests of the .mtrc output path: a .mtrc destination selects the
// binary streaming format — custom specs generate straight to disk,
// presets and downsampled traces materialize first and are spilled.

import (
	"bytes"
	"path/filepath"
	"testing"

	"mnemo/internal/trace"
)

func TestGenerateMtrcStreamed(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.mtrc")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "custom", "-dist", "zipfian", "-theta", "0.9",
		"-read", "0.8", "-sizes", "photo_caption",
		"-keys", "200", "-requests", "3000", "-o", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Error("binary output leaked to stdout")
	}
	sum, err := trace.ValidateFile(out)
	if err != nil {
		t.Fatalf("generated trace fails validation: %v", err)
	}
	if sum.Header.Keys != 200 || sum.Ops != 3000 {
		t.Fatalf("trace dims %d keys / %d ops, want 200 / 3000", sum.Header.Keys, sum.Ops)
	}

	// The streamed generation must be bit-identical to materialize-then-
	// spill of the same spec (one generator implementation).
	spill := filepath.Join(t.TempDir(), "spill.mtrc")
	err = run([]string{
		"-workload", "custom", "-dist", "zipfian", "-theta", "0.9",
		"-read", "0.8", "-sizes", "photo_caption",
		"-keys", "200", "-requests", "3000", "-downsample", "1", "-o", spill,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	a, errA := trace.Open(out)
	b, errB := trace.Open(spill)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a.RequestCount() != b.RequestCount() {
		t.Fatalf("request counts differ: %d vs %d", a.RequestCount(), b.RequestCount())
	}
}

func TestGenerateMtrcPresetAndDownsample(t *testing.T) {
	// Presets materialize and spill; downsampling forces the same path
	// even for custom specs.
	out := filepath.Join(t.TempDir(), "preset.mtrc")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workload", "trending", "-keys", "100", "-requests", "2000", "-o", out}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := trace.ValidateFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ops != 2000 {
		t.Fatalf("preset trace has %d ops, want 2000", sum.Ops)
	}

	down := filepath.Join(t.TempDir(), "down.mtrc")
	err = run([]string{
		"-workload", "custom", "-dist", "uniform", "-read", "1.0", "-sizes", "photo_caption",
		"-keys", "100", "-requests", "2000", "-downsample", "4", "-o", down,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	sum, err = trace.ValidateFile(down)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ops != 500 {
		t.Fatalf("downsampled trace has %d ops, want 500", sum.Ops)
	}
}

func TestGenerateMtrcDrift(t *testing.T) {
	out := filepath.Join(t.TempDir(), "drift.mtrc")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "custom", "-drift", "hotset", "-read", "0.9", "-sizes", "photo_caption",
		"-keys", "200", "-requests", "4000", "-phases", "2", "-o", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateFile(out); err != nil {
		t.Fatalf("drift trace fails validation: %v", err)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("drift layout")) {
		t.Error("drift layout preview missing from stderr")
	}
}
