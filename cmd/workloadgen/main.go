// Command workloadgen emits workload traces in the mnemo-workload v1 csv
// format, either from the paper's Table III presets or from custom
// distribution parameters, for consumption by cmd/mnemo or external
// tools.
//
// Usage:
//
//	workloadgen [flags]
//
//	-workload name    Table III preset (plus hot_drift/phase_shift), or
//	                  "custom"
//	-dist name        custom: uniform|zipfian|scrambled_zipfian|hotspot|
//	                  latest|hot_set_drift|phase_change
//	-drift kind       shorthand for a drifting trace: "hotset" (a hot
//	                  window sweeping the key space once, shaped by
//	                  -hotset/-hotops) or "phase" (-phases re-scrambled
//	                  zipfian phases); prints a drift-layout preview line
//	-phases n         phase count for -drift phase / -dist phase_change
//	                  (default 4)
//	-theta t          custom: zipfian skew (default 0.99)
//	-hotset f         custom: hotspot key fraction (default 0.2)
//	-hotops f         custom: hotspot op fraction (default 0.9)
//	-read r           custom: read ratio in [0,1] (default 1.0)
//	-sizes name       custom: thumbnail|text_post|photo_caption|
//	                  trending_preview_mix|fixed_1kb|fixed_10kb|fixed_100kb
//	-keys n           key-space size (default 10000; tested to 10M keys)
//	-requests n       trace length (default 100000)
//	-downsample k     keep 1 request per block of k (default 1 = all)
//	-shards n         print the consistent-hash cluster layout of the
//	                  trace across n shards on stderr (key/byte/request
//	                  balance and hot-set spread; 0 = skip)
//	-seed n           deterministic seed
//	-o file           destination ('-' = stdout). A path ending in
//	                  .mtrc writes the binary streaming trace format
//	                  instead of CSV; generated drift/custom traces
//	                  are then produced straight to disk in O(frame)
//	                  memory, so -requests 100000000 works fine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mnemo/internal/kvstore"
	"mnemo/internal/registry"
	"mnemo/internal/report"
	"mnemo/internal/shard"
	"mnemo/internal/trace"
	"mnemo/internal/ycsb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("workloadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload   = fs.String("workload", "trending", "Table III preset name or 'custom'")
		distName   = fs.String("dist", "hotspot", "custom distribution")
		drift      = fs.String("drift", "", "drifting trace shorthand: 'hotset' or 'phase'")
		phases     = fs.Int("phases", ycsb.DefaultPhases, "phase count for -drift phase / -dist phase_change")
		theta      = fs.Float64("theta", 0.99, "zipfian skew")
		hotset     = fs.Float64("hotset", 0.2, "hotspot key fraction")
		hotops     = fs.Float64("hotops", 0.9, "hotspot op fraction")
		readRatio  = fs.Float64("read", 1.0, "read ratio")
		sizes      = fs.String("sizes", "thumbnail", "record size distribution")
		keys       = fs.Int("keys", ycsb.DefaultKeys, "key space size")
		requests   = fs.Int("requests", ycsb.DefaultRequests, "request count")
		downsample = fs.Int("downsample", 1, "keep one request per block of this size")
		shards     = fs.Int("shards", 0, "print the trace's consistent-hash layout across `n` shards on stderr (0 = skip)")
		seed       = fs.Int64("seed", 42, "deterministic seed")
		outPath    = fs.String("o", "-", "destination file ('-' = stdout)")
		describe   = fs.Bool("describe", false, "print trace statistics on stderr (hot sets, skew)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *keys <= 0 {
		return fmt.Errorf("keys %d must be positive", *keys)
	}
	if *requests <= 0 {
		return fmt.Errorf("requests %d must be positive", *requests)
	}
	if *phases < 2 {
		return fmt.Errorf("phases %d must be ≥ 2", *phases)
	}
	if *downsample < 1 {
		return fmt.Errorf("downsample factor %d must be ≥ 1", *downsample)
	}
	// A .mtrc destination selects the binary streaming format. Custom and
	// drift specs then generate straight to disk (O(frame) memory);
	// presets and downsampled traces materialize first and are spilled.
	streamOut := *outPath != "-" && strings.HasSuffix(*outPath, ".mtrc")
	streamGen := streamOut && *downsample == 1
	written := false
	var w *ycsb.Workload
	if *drift != "" {
		dn := ""
		switch *drift {
		case "hotset":
			dn = "hot_set_drift"
		case "phase":
			dn = "phase_change"
		default:
			return fmt.Errorf("unknown drift kind %q (want hotset or phase)", *drift)
		}
		spec, err := buildSpec(*workload, dn, *theta, *hotset, *hotops, *readRatio, *sizes, *phases, *seed)
		if err != nil {
			return err
		}
		spec.Keys = *keys
		spec.Requests = *requests
		if streamGen {
			w, err = trace.GenerateFile(spec, *outPath)
			written = true
		} else {
			w, err = ycsb.Generate(spec)
		}
		if err != nil {
			return err
		}
		renderDriftLayout(stderr, w, *phases)
	} else if *workload == "custom" {
		spec, err := buildSpec(*workload, *distName, *theta, *hotset, *hotops, *readRatio, *sizes, *phases, *seed)
		if err != nil {
			return err
		}
		spec.Keys = *keys
		spec.Requests = *requests
		if streamGen {
			w, err = trace.GenerateFile(spec, *outPath)
			written = true
		} else {
			w, err = ycsb.Generate(spec)
		}
		if err != nil {
			return err
		}
		if spec.Dist.Kind == ycsb.HotSetDrift || spec.Dist.Kind == ycsb.PhaseChange {
			renderDriftLayout(stderr, w, *phases)
		}
	} else {
		// Presets resolve through the shared registry helper, so the same
		// names (including ycsb_f) work here, in cmd/mnemo and in the API.
		var err error
		w, err = registry.ResolveWorkload(*workload, *seed, *keys, *requests)
		if err != nil {
			return err
		}
	}
	if *downsample > 1 {
		w = w.Downsample(*downsample, *seed)
	}

	if *describe {
		if err := ycsb.Describe(w).Render(stderr); err != nil {
			return err
		}
	}
	if *shards < 0 {
		return fmt.Errorf("shards %d must be non-negative", *shards)
	}
	if *shards >= 1 {
		if err := renderShardLayout(stderr, w, *shards); err != nil {
			return err
		}
	}

	if streamOut {
		if !written {
			if err := trace.WriteWorkload(w, *outPath); err != nil {
				return err
			}
		}
	} else {
		var out io.Writer = stdout
		if *outPath != "-" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := w.WriteCSV(out); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "wrote %s: %d records, %d ops, dataset %d bytes\n",
		w.Spec.Name, len(w.Dataset.Records), w.RequestCount(), w.Dataset.TotalBytes)
	return nil
}

// renderShardLayout prints how a consistent-hash ring of n shards would
// partition the trace: per-shard key, byte and request balance, plus
// how many distinct shards serve the hottest 64 keys — the sanity check
// that a skewed hot set really spans shard boundaries before anyone
// provisions a cluster for the trace.
func renderShardLayout(stderr io.Writer, w *ycsb.Workload, n int) error {
	part, err := shard.For(w, n, 0, !w.Packed().Batchable())
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Cluster layout — %d consistent-hash shards", n),
		"shard", "keys", "bytes", "requests", "req share")
	total := w.RequestCount()
	if total == 0 {
		total = 1
	}
	for s := 0; s < n; s++ {
		sub := part.Subs[s]
		t.AddRow(s, len(sub.W.Dataset.Records), report.FormatBytes(sub.W.Dataset.TotalBytes),
			sub.Requests, fmt.Sprintf("%.1f%%", float64(sub.Requests)/float64(total)*100))
	}
	if err := t.Render(stderr); err != nil {
		return err
	}
	reads := make([]int, len(w.Dataset.Records))
	if err := w.ForEachOp(func(key int, _ kvstore.OpKind) { reads[key]++ }); err != nil {
		return err
	}
	const hot = 64
	spread := part.HotShardSpread(reads, make([]int, len(reads)), hot)
	fmt.Fprintf(stderr, "hottest %d keys span %d of %d shards\n", hot, spread, n)
	return nil
}

// renderDriftLayout previews the non-stationarity of a drifting trace
// on stderr: how fast the hot set moves relative to the trace — and to
// the 4096-op replay blocks adaptive epochs are rounded to — so the
// epoch length for an adaptive replay can be picked before running one.
func renderDriftLayout(stderr io.Writer, w *ycsb.Workload, phases int) {
	keys, requests := len(w.Dataset.Records), w.Spec.Requests
	if requests <= 0 {
		requests = w.RequestCount()
	}
	switch w.Spec.Dist.Kind {
	case ycsb.HotSetDrift:
		hot := int(w.Spec.Dist.HotSetFraction * float64(keys))
		fmt.Fprintf(stderr,
			"drift layout: hot window of %d keys (%.0f%% of ops) sweeps all %d keys once over %d requests (~%.1f keys per 4096-op block)\n",
			hot, w.Spec.Dist.HotOpnFraction*100, keys, requests,
			float64(keys)*4096/float64(requests))
	case ycsb.PhaseChange:
		if p := w.Spec.Dist.Phases; p > 0 {
			phases = p
		}
		fmt.Fprintf(stderr,
			"drift layout: %d zipfian phases × %d requests, hot set re-scrambled at every phase boundary\n",
			phases, requests/phases)
	}
}

// buildSpec assembles the custom-workload spec; presets resolve through
// registry.ResolveWorkload instead.
func buildSpec(_, distName string, theta, hotset, hotops, readRatio float64, sizes string, phases int, seed int64) (ycsb.Spec, error) {
	var dk ycsb.DistKind
	switch distName {
	case "uniform":
		dk = ycsb.Uniform
	case "zipfian":
		dk = ycsb.Zipfian
	case "scrambled_zipfian":
		dk = ycsb.ScrambledZipfian
	case "hotspot":
		dk = ycsb.Hotspot
	case "latest":
		dk = ycsb.Latest
	case "hot_set_drift":
		dk = ycsb.HotSetDrift
	case "phase_change":
		dk = ycsb.PhaseChange
	default:
		return ycsb.Spec{}, fmt.Errorf("unknown distribution %q", distName)
	}
	var sk ycsb.SizeKind
	switch sizes {
	case "thumbnail":
		sk = ycsb.SizeThumbnail
	case "text_post":
		sk = ycsb.SizeTextPost
	case "photo_caption":
		sk = ycsb.SizePhotoCaption
	case "trending_preview_mix":
		sk = ycsb.SizeTrendingPreview
	case "fixed_1kb":
		sk = ycsb.SizeFixed1KB
	case "fixed_10kb":
		sk = ycsb.SizeFixed10KB
	case "fixed_100kb":
		sk = ycsb.SizeFixed100KB
	default:
		return ycsb.Spec{}, fmt.Errorf("unknown size distribution %q", sizes)
	}
	return ycsb.Spec{
		Name:      "custom_" + distName,
		Dist:      ycsb.DistSpec{Kind: dk, Theta: theta, HotSetFraction: hotset, HotOpnFraction: hotops, Phases: phases},
		ReadRatio: readRatio,
		Sizes:     sk,
		Seed:      seed,
		UseCase:   "user-defined workload",
	}, nil
}
