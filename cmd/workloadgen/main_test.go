package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnemo/internal/ycsb"
)

func TestGeneratePresetToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workload", "trending", "-keys", "50", "-requests", "500"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ycsb.ReadCSV(&stdout)
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	if len(w.Dataset.Records) != 50 || len(w.Ops) != 500 {
		t.Fatalf("scale wrong: %d keys, %d ops", len(w.Dataset.Records), len(w.Ops))
	}
	if !strings.Contains(stderr.String(), "wrote trending") {
		t.Error("summary missing")
	}
}

func TestGenerateCustomToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.csv")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "custom", "-dist", "zipfian", "-theta", "0.8",
		"-read", "0.7", "-sizes", "photo_caption",
		"-keys", "100", "-requests", "1000", "-o", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := ycsb.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if w.Spec.Name != "custom_zipfian" {
		t.Errorf("name = %q", w.Spec.Name)
	}
	rf := w.ReadFraction()
	if rf < 0.6 || rf > 0.8 {
		t.Errorf("read fraction %.2f, want ≈0.7", rf)
	}
}

func TestGenerateDownsampled(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workload", "timeline", "-keys", "50", "-requests", "1000",
		"-downsample", "10"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ycsb.ReadCSV(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Ops) != 100 {
		t.Fatalf("downsampled ops = %d, want 100", len(w.Ops))
	}
}

func TestDescribeFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workload", "trending", "-keys", "100", "-requests", "1000",
		"-describe", "-o", "-"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hot set", "Gini", "touched keys"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("describe output missing %q", want)
		}
	}
}

func TestStandardWorkloadNamesResolved(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-workload", "ycsb_a", "-keys", "50", "-requests", "500"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "ycsb_a") {
		t.Error("standard workload not generated")
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := [][]string{
		{"-workload", "bogus"},
		{"-workload", "custom", "-dist", "bogus"},
		{"-workload", "custom", "-sizes", "bogus"},
		{"-downsample", "0"},
		{"-keys", "0"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestAllDistAndSizeNamesAccepted(t *testing.T) {
	for _, d := range []string{"uniform", "zipfian", "scrambled_zipfian", "hotspot", "latest"} {
		for _, s := range []string{"thumbnail", "text_post", "photo_caption",
			"trending_preview_mix", "fixed_1kb", "fixed_10kb", "fixed_100kb"} {
			var stdout, stderr bytes.Buffer
			err := run([]string{"-workload", "custom", "-dist", d, "-sizes", s,
				"-keys", "20", "-requests", "100"}, &stdout, &stderr)
			if err != nil {
				t.Errorf("dist %s sizes %s: %v", d, s, err)
			}
		}
	}
}

func TestShardLayoutFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "custom", "-dist", "zipfian",
		"-keys", "2000", "-requests", "20000", "-shards", "8",
		"-o", os.DevNull,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stderr.String()
	if !strings.Contains(out, "Cluster layout — 8 consistent-hash shards") {
		t.Errorf("layout table missing: %s", out)
	}
	if !strings.Contains(out, "hottest 64 keys span") {
		t.Errorf("hot-spread line missing: %s", out)
	}
	if strings.Contains(out, "span 0 of") || strings.Contains(out, "span 1 of") {
		t.Errorf("zipfian hot set collapsed onto one shard: %s", out)
	}
}

// TestTenMillionKeySpace exercises the satellite scale contract: the
// generator and the shard partitioner handle a 10M-key zipfian key
// space, and its hot set still spans shard boundaries.
func TestTenMillionKeySpace(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-key generation in -short mode")
	}
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workload", "custom", "-dist", "zipfian", "-sizes", "fixed_1kb",
		"-keys", "10000000", "-requests", "1000000", "-shards", "8",
		"-o", os.DevNull,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stderr.String()
	if !strings.Contains(out, "wrote custom_zipfian: 10000000 records") {
		t.Errorf("10M-record summary missing: %s", out)
	}
	if strings.Contains(out, "span 0 of") || strings.Contains(out, "span 1 of") {
		t.Errorf("hot set collapsed onto one shard: %s", out)
	}
}

func TestDriftFlagHotset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-drift", "hotset", "-keys", "200", "-requests", "4000"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ycsb.ReadCSV(&stdout)
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	// The CSV carries the trace, not the distribution spec; the drifting
	// shape itself is the check — early ops hit low keys, late ops high.
	if w.Spec.Name != "custom_hot_set_drift" {
		t.Errorf("name %q", w.Spec.Name)
	}
	tenth := len(w.Ops) / 10
	lowShare := func(ops []ycsb.Op) float64 {
		low := 0
		for _, op := range ops {
			if op.Key < len(w.Dataset.Records)/2 {
				low++
			}
		}
		return float64(low) / float64(len(ops))
	}
	// Probe the 70–80% stretch, where the window sits fully in the upper
	// half (at the very end it wraps back over low keys).
	if early, late := lowShare(w.Ops[:tenth]), lowShare(w.Ops[7*tenth:8*tenth]); early < 0.7 || late > 0.4 {
		t.Errorf("trace does not drift: low-half share %.2f early, %.2f late", early, late)
	}
	if len(w.Dataset.Records) != 200 || len(w.Ops) != 4000 {
		t.Fatalf("scale wrong: %d keys, %d ops", len(w.Dataset.Records), len(w.Ops))
	}
	if !w.Packed().Batchable() {
		t.Error("drift trace not packed-trace compatible")
	}
	if !strings.Contains(stderr.String(), "drift layout: hot window") {
		t.Errorf("layout preview missing from stderr:\n%s", stderr.String())
	}
}

func TestDriftFlagPhases(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-drift", "phase", "-phases", "5", "-keys", "200", "-requests", "4000"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ycsb.ReadCSV(&stdout)
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	if w.Spec.Name != "custom_phase_change" {
		t.Errorf("name %q", w.Spec.Name)
	}
	if len(w.Dataset.Records) != 200 || len(w.Ops) != 4000 {
		t.Fatalf("scale wrong: %d keys, %d ops", len(w.Dataset.Records), len(w.Ops))
	}
	if !strings.Contains(stderr.String(), "drift layout: 5 zipfian phases") {
		t.Errorf("layout preview missing from stderr:\n%s", stderr.String())
	}
}

func TestDriftFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-drift", "sideways"}, &stdout, &stderr); err == nil {
		t.Error("unknown drift kind accepted")
	}
	if err := run([]string{"-drift", "phase", "-phases", "1"}, &stdout, &stderr); err == nil {
		t.Error("single phase accepted")
	}
}

func TestCustomDriftDistPrintsLayout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workload", "custom", "-dist", "phase_change",
		"-keys", "100", "-requests", "1000"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "drift layout:") {
		t.Errorf("custom drift dist printed no layout preview:\n%s", stderr.String())
	}
}
