package main

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

func TestGatePassesOnCurrentTree(t *testing.T) {
	// testdata/current.txt is a real -count 5 run of the tracked
	// benchmarks on this tree; the gate must accept it.
	var out bytes.Buffer
	err := run([]string{"-baseline", "../../BENCH_baseline.json", "testdata/current.txt"}, &out)
	if err != nil {
		t.Fatalf("gate failed on current-tree fixture: %v\n%s", err, out.String())
	}
	for _, want := range []string{"BenchmarkReplay", "BenchmarkReplayBatched", "BenchmarkDeploymentDo", "BenchmarkValidateParallel", "BenchmarkReplaySharded", "BenchmarkReplayAdaptive", "BenchmarkReplayStreamed", "BenchmarkTuneSweep", "ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("report contains FAIL:\n%s", out.String())
	}
}

func TestGateFailsOnSyntheticSlowdown(t *testing.T) {
	// testdata/slowdown.txt is current.txt with the shipped-path timings
	// (Indexed/Batched/Shards4/Adaptive/Streamed ns/req, Index/Parallel/
	// Memoized ns/op) doubled: a 2x regression must trip every gate.
	var out bytes.Buffer
	err := run([]string{"-baseline", "../../BENCH_baseline.json", "testdata/slowdown.txt"}, &out)
	if err == nil {
		t.Fatalf("gate accepted a 2x slowdown:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "8 of 8 speedup gates failed") {
		t.Errorf("error = %v, want all gates failing", err)
	}
	if got := strings.Count(out.String(), "FAIL"); got != 8 {
		t.Errorf("report shows %d FAIL verdicts, want 8:\n%s", got, out.String())
	}
}

func TestGateFamilyToleranceCap(t *testing.T) {
	// The streamed family caps its tolerance at 10%: an ~18% erosion of
	// the streamed-over-batched ratio sits inside the global ±25%
	// envelope but past the family cap, so exactly that gate must trip.
	// The fixture is current.txt with the Streamed samples slowed to a
	// ratio of ~0.75 against a 0.91*0.9 = 0.819 family floor (the
	// global floor would be 0.91*0.75 = 0.68, which ~0.75 clears).
	raw, err := os.ReadFile("testdata/current.txt")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "BenchmarkReplayStreamed/Streamed") {
			continue
		}
		lines = append(lines, line)
	}
	for _, v := range []string{"84.11", "89.45", "87.67", "86.24", "88.12"} {
		lines = append(lines, "BenchmarkReplayStreamed/Streamed 1500 "+strings.Replace(v, ".", "", 1)+"0000 ns/op "+v+" ns/req")
	}
	path := t.TempDir() + "/stream.txt"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"-baseline", "../../BENCH_baseline.json", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 of 8") {
		t.Fatalf("family cap did not trip exactly once: err %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkReplayStreamed") || strings.Count(out.String(), "FAIL") != 1 {
		t.Errorf("wrong gate tripped:\n%s", out.String())
	}
}

func TestGateMultipleFilesAndZeroTolerance(t *testing.T) {
	// Samples may be split across files (one per package in CI); with
	// -tolerance 0 the floor equals the recorded baseline, which the
	// current fixture does not reach — deliberately strict.
	var out bytes.Buffer
	err := run([]string{"-baseline", "../../BENCH_baseline.json", "-tolerance", "0",
		"testdata/current.txt", "testdata/current.txt"}, &out)
	if err == nil {
		t.Fatalf("zero tolerance accepted sub-baseline speedups:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "n=10") {
		t.Errorf("samples from both files not pooled:\n%s", out.String())
	}
}

func TestGateRejectsBadInvocation(t *testing.T) {
	for _, args := range [][]string{
		{},                          // no bench files
		{"-tolerance", "1", "x"},    // tolerance outside [0,1)
		{"-tolerance", "-0.1", "x"}, // negative tolerance
		{"testdata/missing.txt"},    // unreadable bench file
		{"-baseline", "testdata/missing.json", "testdata/current.txt"}, // unreadable baseline
	} {
		var out bytes.Buffer
		if err := run(append([]string{}, args...), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestGateRejectsMissingSamples(t *testing.T) {
	// A truncated run (benchmark panicked, -bench regex too narrow) must
	// fail loudly rather than pass vacuously.
	var out bytes.Buffer
	err := run([]string{"-baseline", "../../BENCH_baseline.json", "testdata/empty.txt"}, &out)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("empty bench output not rejected: %v", err)
	}
}

func TestParseBench(t *testing.T) {
	input := `goos: linux
BenchmarkReplay/StringKeyed-8   	     500	   3717369 ns/op	       371.7 ns/req
BenchmarkReplay/StringKeyed     	     600	   3500000 ns/op	       350.0 ns/req
some unrelated line
PASS
`
	samples := map[string][]float64{}
	if err := parseBench(strings.NewReader(input), samples); err != nil {
		t.Fatal(err)
	}
	// The -8 CPU suffix is stripped, so both lines pool under one key.
	got := samples["BenchmarkReplay/StringKeyed ns/req"]
	if len(got) != 2 || got[0] != 371.7 || got[1] != 350.0 {
		t.Errorf("ns/req samples = %v", got)
	}
	if ops := samples["BenchmarkReplay/StringKeyed ns/op"]; len(ops) != 2 {
		t.Errorf("ns/op samples = %v", ops)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("even median = %v", got)
	}
}
