package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGatePassesOnCurrentTree(t *testing.T) {
	// testdata/current.txt is a real -count 5 run of the tracked
	// benchmarks on this tree; the gate must accept it.
	var out bytes.Buffer
	err := run([]string{"-baseline", "../../BENCH_baseline.json", "testdata/current.txt"}, &out)
	if err != nil {
		t.Fatalf("gate failed on current-tree fixture: %v\n%s", err, out.String())
	}
	for _, want := range []string{"BenchmarkReplay", "BenchmarkReplayBatched", "BenchmarkDeploymentDo", "BenchmarkValidateParallel", "BenchmarkReplaySharded", "BenchmarkReplayAdaptive", "ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("report contains FAIL:\n%s", out.String())
	}
}

func TestGateFailsOnSyntheticSlowdown(t *testing.T) {
	// testdata/slowdown.txt is current.txt with the shipped-path timings
	// (Indexed/Batched/Shards4/Adaptive ns/req, Index/Parallel ns/op)
	// doubled: a 2x regression must trip every gate.
	var out bytes.Buffer
	err := run([]string{"-baseline", "../../BENCH_baseline.json", "testdata/slowdown.txt"}, &out)
	if err == nil {
		t.Fatalf("gate accepted a 2x slowdown:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "6 of 6 speedup gates failed") {
		t.Errorf("error = %v, want all gates failing", err)
	}
	if got := strings.Count(out.String(), "FAIL"); got != 6 {
		t.Errorf("report shows %d FAIL verdicts, want 6:\n%s", got, out.String())
	}
}

func TestGateMultipleFilesAndZeroTolerance(t *testing.T) {
	// Samples may be split across files (one per package in CI); with
	// -tolerance 0 the floor equals the recorded baseline, which the
	// current fixture does not reach — deliberately strict.
	var out bytes.Buffer
	err := run([]string{"-baseline", "../../BENCH_baseline.json", "-tolerance", "0",
		"testdata/current.txt", "testdata/current.txt"}, &out)
	if err == nil {
		t.Fatalf("zero tolerance accepted sub-baseline speedups:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "n=10") {
		t.Errorf("samples from both files not pooled:\n%s", out.String())
	}
}

func TestGateRejectsBadInvocation(t *testing.T) {
	for _, args := range [][]string{
		{},                          // no bench files
		{"-tolerance", "1", "x"},    // tolerance outside [0,1)
		{"-tolerance", "-0.1", "x"}, // negative tolerance
		{"testdata/missing.txt"},    // unreadable bench file
		{"-baseline", "testdata/missing.json", "testdata/current.txt"}, // unreadable baseline
	} {
		var out bytes.Buffer
		if err := run(append([]string{}, args...), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestGateRejectsMissingSamples(t *testing.T) {
	// A truncated run (benchmark panicked, -bench regex too narrow) must
	// fail loudly rather than pass vacuously.
	var out bytes.Buffer
	err := run([]string{"-baseline", "../../BENCH_baseline.json", "testdata/empty.txt"}, &out)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("empty bench output not rejected: %v", err)
	}
}

func TestParseBench(t *testing.T) {
	input := `goos: linux
BenchmarkReplay/StringKeyed-8   	     500	   3717369 ns/op	       371.7 ns/req
BenchmarkReplay/StringKeyed     	     600	   3500000 ns/op	       350.0 ns/req
some unrelated line
PASS
`
	samples := map[string][]float64{}
	if err := parseBench(strings.NewReader(input), samples); err != nil {
		t.Fatal(err)
	}
	// The -8 CPU suffix is stripped, so both lines pool under one key.
	got := samples["BenchmarkReplay/StringKeyed ns/req"]
	if len(got) != 2 || got[0] != 371.7 || got[1] != 350.0 {
		t.Errorf("ns/req samples = %v", got)
	}
	if ops := samples["BenchmarkReplay/StringKeyed ns/op"]; len(ops) != 2 {
		t.Errorf("ns/op samples = %v", ops)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("even median = %v", got)
	}
}
