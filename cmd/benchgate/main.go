// Command benchgate is the CI perf-regression gate: it reads raw
// `go test -bench` output and fails when the replay fast path has lost
// its measured speedup over the frozen legacy replica.
//
// Absolute ns/op are meaningless across CI hosts, so the gate never
// compares against recorded timings. Instead it recomputes the
// within-invocation speedup ratio — the legacy benchmark and the
// current benchmark run back to back in the same process, so their
// ratio is stable even on noisy shared runners (see BENCH_baseline.json:
// "ratios within one invocation are stable") — and compares that
// against the ratio recorded in the baseline file, with a tolerance.
//
// Usage:
//
//	go test ./internal/client -run '^$' -bench BenchmarkReplay -count 5 > bench.txt
//	go test ./internal/server -run '^$' -bench BenchmarkDeploymentDo -count 5 >> bench.txt
//	benchgate -baseline BENCH_baseline.json bench.txt
//
// Flags:
//
//	-baseline file   baseline JSON (default BENCH_baseline.json)
//	-tolerance t     allowed relative ratio erosion (default 0.25: fail
//	                 when the measured speedup drops below 75% of the
//	                 baseline speedup). Families with a tighter
//	                 acceptance bar (BenchmarkReplayStreamed: 10%) cap
//	                 their tolerance below the flag.
//
// With -count N each benchmark reports N samples; the gate takes the
// median per benchmark before forming ratios, benchstat-style.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// gate pairs a legacy benchmark with its optimized counterpart. The
// recorded speedup comes from the baseline file's entry for Bench
// (speedup_median or speedup).
type gate struct {
	Bench   string // benchmark family, e.g. "BenchmarkReplay"
	Legacy  string // sub-benchmark of the frozen pre-optimization path
	Current string // sub-benchmark of the shipped path
	Metric  string // which column to read: "ns/op" or "ns/req"

	// Tolerance, when non-zero, caps the allowed erosion for this family
	// below the -tolerance flag (the effective tolerance is the smaller
	// of the two). Families whose acceptance bar is tighter than the
	// global noise envelope set it.
	Tolerance float64
}

// gates lists the tracked legacy/current pairs. Note the chain:
// BenchmarkReplay's current path (Indexed) is BenchmarkReplayBatched's
// legacy side — each optimization generation is gated against the one it
// superseded.
var gates = []gate{
	{Bench: "BenchmarkReplay", Legacy: "StringKeyed", Current: "Indexed", Metric: "ns/req"},
	{Bench: "BenchmarkReplayBatched", Legacy: "Indexed", Current: "Batched", Metric: "ns/req"},
	{Bench: "BenchmarkDeploymentDo", Legacy: "String", Current: "Index", Metric: "ns/op"},
	{Bench: "BenchmarkValidateParallel", Legacy: "Sequential", Current: "Parallel", Metric: "ns/op"},
	{Bench: "BenchmarkReplaySharded", Legacy: "Shards1", Current: "Shards4", Metric: "ns/req"},
	// Overhead gate, not a speedup gate: Static is the batched kernel and
	// Adaptive the epoch-chunked replay wrapping it, so the recorded
	// baseline ratio sits below 1.0 and the floor bounds how much the
	// adaptive machinery may cost on a trace that never needed to adapt.
	{Bench: "BenchmarkReplayAdaptive", Legacy: "Static", Current: "Adaptive", Metric: "ns/req"},
	// Overhead gate for the streaming trace path: Batched replays the
	// in-memory packed trace through the kernel, Streamed replays the
	// same trace from a .mtrc file (frame decode + CRC on top). The
	// baseline ratio sits just below 1.0, and the tighter 10% tolerance
	// holds streamed replay within the format's acceptance bar of the
	// in-memory path rather than the global ±25% envelope.
	{Bench: "BenchmarkReplayStreamed", Legacy: "Batched", Current: "Streamed", Metric: "ns/req", Tolerance: 0.10},
	// mnemo-tune's reason to exist: the naive sweep measures a fresh
	// Fast+Slow baseline for every candidate config, the memoized sweep
	// shares one content-addressed measurement across all 32. Each
	// iteration starts from a cold ArtifactCache, so the ratio is pure
	// within-sweep memoization.
	{Bench: "BenchmarkTuneSweep", Legacy: "Naive", Current: "Memoized", Metric: "ns/op"},
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stdout)
	baseline := fs.String("baseline", "BENCH_baseline.json", "baseline JSON `file`")
	tolerance := fs.Float64("tolerance", 0.25, "allowed relative speedup erosion in [0,1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tolerance < 0 || *tolerance >= 1 {
		return fmt.Errorf("-tolerance %v outside [0,1)", *tolerance)
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("no bench output files given (run go test -bench and pass the output)")
	}

	base, err := loadBaseline(*baseline)
	if err != nil {
		return err
	}
	samples := map[string][]float64{}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		err = parseBench(f, samples)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
	}

	failed := 0
	for _, g := range gates {
		want, ok := base[g.Bench]
		if !ok {
			return fmt.Errorf("baseline %s has no speedup for %s", *baseline, g.Bench)
		}
		legacy, ok1 := samples[g.Bench+"/"+g.Legacy+" "+g.Metric]
		current, ok2 := samples[g.Bench+"/"+g.Current+" "+g.Metric]
		if !ok1 || !ok2 {
			return fmt.Errorf("%s: missing %s samples (legacy %v, current %v) — did the bench run?",
				g.Bench, g.Metric, ok1, ok2)
		}
		got := median(legacy) / median(current)
		tol := *tolerance
		if g.Tolerance > 0 && g.Tolerance < tol {
			tol = g.Tolerance
		}
		floor := want * (1 - tol)
		verdict := "ok"
		if got < floor {
			verdict = "FAIL"
			failed++
		}
		fmt.Fprintf(stdout, "%-24s %s/%s speedup %.2fx (baseline %.2fx, floor %.2fx, n=%d) %s\n",
			g.Bench, g.Legacy, g.Current, got, want, floor, len(current), verdict)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d speedup gates failed", failed, len(gates))
	}
	return nil
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkReplay/StringKeyed-8  	  10000	  410.9 ns/op	  395.2 ns/req
//
// capturing the name and the metric columns that follow the iteration
// count as (value, unit) pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// cpuSuffix is the -GOMAXPROCS suffix go test appends to benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench scans raw benchmark output, appending each metric sample to
// samples keyed "name metric" (name without the CPU suffix).
func parseBench(r io.Reader, samples map[string][]float64) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("bad metric value %q on line %q", fields[i], sc.Text())
			}
			samples[name+" "+fields[i+1]] = append(samples[name+" "+fields[i+1]], v)
		}
	}
	return sc.Err()
}

// loadBaseline reads the recorded speedup ratio per benchmark family
// from BENCH_baseline.json (speedup_median, falling back to speedup).
func loadBaseline(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Benchmarks map[string]map[string]json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for name, fields := range doc.Benchmarks {
		for _, key := range []string{"speedup_median", "speedup"} {
			if raw, ok := fields[key]; ok {
				var v float64
				if err := json.Unmarshal(raw, &v); err != nil {
					return nil, fmt.Errorf("%s: %s.%s: %w", path, name, key, err)
				}
				out[name] = v
				break
			}
		}
	}
	return out, nil
}

// median returns the middle value (mean of the middle two for even n).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
