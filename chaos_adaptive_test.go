package mnemo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"mnemo/internal/pool"
)

// TestChaosAdaptiveSchedules drives the adaptive (epoch-migrating)
// pipeline through seeded fault schedules: profile a drifting trace with
// an adaptive policy, then measure the advised placement statically and
// adaptively with faults armed. The contract matches the static chaos
// sweep — every schedule ends in a comparison or a typed error, no panic
// escapes, no goroutine leaks — plus the adaptive-specific invariant
// that a successful comparison's migration ledger is internally
// consistent even when faults fired mid-run.
func TestChaosAdaptiveSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is a long test")
	}
	const schedules = 60

	warmup := runtime.NumGoroutine()

	for i := 0; i < schedules; i++ {
		rng := rand.New(rand.NewSource(int64(i)*7919 + 3))
		w, err := GenerateWorkload(WorkloadSpec{
			Name: fmt.Sprintf("chaos_adaptive_%d", i), Keys: 60, Requests: 2 * 4096,
			Dist:      DistSpec{Kind: HotSetDrift, HotSetFraction: 0.2, HotOpnFraction: 0.9},
			ReadRatio: 0.9, Sizes: SizeFixed10KB, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Store: DynamoLike, Seed: int64(i) + 1, SLO: 0.01,
			Policy: "adaptive-freq", EpochOps: 4096,
			MigrationCostPerByte: rng.Float64(),
			Runs:                 1 + rng.Intn(2),
			Fault: FaultSpec{
				Seed:        int64(i)*13 + 7,
				FailProb:    rng.Float64() * 0.5,
				StallProb:   rng.Float64() * 0.3,
				OutlierProb: rng.Float64() * 0.3,
				CrashProb:   rng.Float64() * 0.2,
			},
			Retries: rng.Intn(3),
		}
		if rng.Intn(2) == 0 {
			opts.RunTimeout = 2 * Second
		}
		if rng.Intn(3) == 0 {
			opts.MigrationBudget = 1 + rng.Int63n(1<<20)
		}
		rep, err := Profile(w, opts)
		if err != nil {
			var pe *pool.PanicError
			if errors.As(err, &pe) {
				t.Fatalf("schedule %d: profile panic captured: %v\n%s", i, pe.Value, pe.Stack)
			}
			if !expectedChaosErr(err) {
				t.Fatalf("schedule %d: untyped profile error %v", i, err)
			}
			continue
		}
		ac, err := MeasureAdaptive(context.Background(), w, rep, opts)
		if err != nil {
			var pe *pool.PanicError
			if errors.As(err, &pe) {
				t.Fatalf("schedule %d: measure panic captured: %v\n%s", i, pe.Value, pe.Stack)
			}
			if !expectedChaosErr(err) {
				t.Fatalf("schedule %d: untyped measure error %v", i, err)
			}
			continue
		}
		if ac.Static.Epochs != 0 || ac.Static.MovesApplied != 0 {
			t.Fatalf("schedule %d: static leg adapted: %+v", i, ac.Static)
		}
		var moves int
		var bytes int64
		var cost float64
		for _, e := range ac.Adaptive.EpochTraffic {
			moves += e.Moves
			bytes += e.Bytes
			cost += e.CostNs
		}
		if moves != ac.Adaptive.MovesApplied || bytes != ac.Adaptive.MigratedBytes || cost != ac.Adaptive.MigrationNs {
			t.Fatalf("schedule %d: ledger mismatch under faults: traffic %d/%d/%v vs totals %d/%d/%v",
				i, moves, bytes, cost, ac.Adaptive.MovesApplied, ac.Adaptive.MigratedBytes, ac.Adaptive.MigrationNs)
		}
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= warmup+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after %d schedules", warmup, runtime.NumGoroutine(), schedules)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
