package mnemo

import (
	"path/filepath"
	"testing"
)

// TestTraceAPIRoundTrip pins the facade's .mtrc surface: WriteTrace
// spills a workload, ValidateTrace reports its dimensions, OpenTrace
// reopens it streamed, and the streamed workload measures through the
// standard pipeline.
func TestTraceAPIRoundTrip(t *testing.T) {
	w := smallWorkload(t)
	path := filepath.Join(t.TempDir(), "facade.mtrc")
	if err := WriteTrace(w, path); err != nil {
		t.Fatal(err)
	}

	sum, err := ValidateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Name != w.Spec.Name || sum.Keys != len(w.Dataset.Records) || sum.Requests != int64(len(w.Ops)) {
		t.Fatalf("summary %+v does not match workload %s/%d/%d",
			sum, w.Spec.Name, len(w.Dataset.Records), len(w.Ops))
	}
	if sum.Frames == 0 || sum.ReadWriteFrames != sum.Frames {
		t.Fatalf("read-only trace validated as %d rw of %d frames", sum.ReadWriteFrames, sum.Frames)
	}

	tw, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if tw.RequestCount() != len(w.Ops) || len(tw.Dataset.Records) != len(w.Dataset.Records) {
		t.Fatalf("reopened trace has %d requests / %d records, want %d / %d",
			tw.RequestCount(), len(tw.Dataset.Records), len(w.Ops), len(w.Dataset.Records))
	}

	// The streamed workload must profile like the in-memory one.
	opts := Options{Store: RedisLike, Seed: 9}
	got, err := Profile(tw, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Profile(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Baselines.Fast.Runtime != want.Baselines.Fast.Runtime ||
		got.Baselines.Slow.Runtime != want.Baselines.Slow.Runtime {
		t.Fatalf("streamed baselines %v/%v != in-memory %v/%v",
			got.Baselines.Fast.Runtime, got.Baselines.Slow.Runtime,
			want.Baselines.Fast.Runtime, want.Baselines.Slow.Runtime)
	}
}

func TestTraceAPIErrors(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "absent.mtrc")
	if _, err := OpenTrace(missing); err == nil {
		t.Error("OpenTrace accepted a missing file")
	}
	if _, err := ValidateTrace(missing); err == nil {
		t.Error("ValidateTrace accepted a missing file")
	}
	if err := WriteTrace(smallWorkload(t), filepath.Join(t.TempDir(), "no", "dir", "x.mtrc")); err == nil {
		t.Error("WriteTrace succeeded under a nonexistent directory")
	}
}
