package mnemo

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// Tuning a small workload through the public API produces a coherent
// result: one shared measurement, a ranked frontier, and a winner no
// worse than every default.
func TestTuneAPI(t *testing.T) {
	w, err := WorkloadByNameSized("ycsb_b", 5, 150, 3000)
	if err != nil {
		t.Fatalf("WorkloadByNameSized: %v", err)
	}
	res, err := Tune(context.Background(), w, Options{SLO: 0.10, Seed: 42},
		TuneOptions{Budget: 24, SearchSeed: 7, Policies: []string{"mnemot", "knapsack", "freqdecay"}})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if len(res.Evals) == 0 || len(res.Frontier) == 0 || len(res.Defaults) != 3 {
		t.Fatalf("incoherent result: %d evals, %d frontier, %d defaults",
			len(res.Evals), len(res.Frontier), len(res.Defaults))
	}
	if res.Stats.Measurements != 1 {
		t.Fatalf("tuning executed %d baseline measurements, want 1", res.Stats.Measurements)
	}
	if res.Winner.CostFactor > res.Defaults[0].CostFactor {
		t.Fatalf("winner cost %v worse than best default %v", res.Winner.CostFactor, res.Defaults[0].CostFactor)
	}
}

// Pinned acceptance case: on the news_feed stock workload the tuned
// configuration (a cut-targeted knapsack anchor) is strictly cheaper at
// the SLO than every registered policy at default parameters. The win
// is the exact-packing integrality gap just below the density
// ordering's advised cut — the mechanism DESIGN.md §17 describes.
func TestTunedConfigBeatsEveryDefault(t *testing.T) {
	w, err := WorkloadByNameSized("news_feed", 5, 800, 12000)
	if err != nil {
		t.Fatalf("WorkloadByNameSized: %v", err)
	}
	res, err := Tune(context.Background(), w, Options{SLO: 0.07, Seed: 42},
		TuneOptions{Budget: 64, SearchSeed: 7})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if res.Gain() <= 0 {
		t.Fatalf("tuning found no strict win: winner %s cost %v, best default %s cost %v",
			res.Winner.PolicyName, res.Winner.CostFactor,
			res.Defaults[0].PolicyName, res.Defaults[0].CostFactor)
	}
	for _, d := range res.Defaults {
		if res.Winner.CostFactor >= d.CostFactor {
			t.Fatalf("winner %s (cost %v) does not strictly beat default %s (cost %v)",
				res.Winner.PolicyName, res.Winner.CostFactor, d.PolicyName, d.CostFactor)
		}
	}
	if res.Winner.Slowdown > res.SLO {
		t.Fatalf("winner violates the SLO: slowdown %v > %v", res.Winner.Slowdown, res.SLO)
	}
	if !strings.HasPrefix(res.Winner.PolicyName, "knapsack(") {
		t.Logf("note: winner is %s, not an anchored knapsack", res.Winner.PolicyName)
	}
}

// A spec produced by TuneWithSpec replays bit-identically through
// ReplayTuneSpec after a JSON round-trip.
func TestTuneSpecPublicRoundTrip(t *testing.T) {
	recipe := TuneWorkloadRecipe{Name: "ycsb_b", Seed: 5, Keys: 150, Requests: 3000}
	res, spec, err := TuneWithSpec(context.Background(), recipe, Options{SLO: 0.10, Seed: 42},
		TuneOptions{Budget: 16, SearchSeed: 3, Policies: []string{"mnemot", "knapsack"}})
	if err != nil {
		t.Fatalf("TuneWithSpec: %v", err)
	}
	if spec.Expected.CostFactor != res.Winner.CostFactor {
		t.Fatalf("spec expected cost %v != winner cost %v", spec.Expected.CostFactor, res.Winner.CostFactor)
	}
	var buf bytes.Buffer
	if err := spec.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	decoded, err := DecodeTuneSpec(&buf)
	if err != nil {
		t.Fatalf("DecodeTuneSpec: %v", err)
	}
	ev, err := ReplayTuneSpec(context.Background(), decoded)
	if err != nil {
		t.Fatalf("ReplayTuneSpec: %v", err)
	}
	if ev.CostFactor != spec.Expected.CostFactor || ev.FastBytes != spec.Expected.FastBytes {
		t.Fatalf("replay diverged: %+v vs expected %+v", ev, spec.Expected)
	}
}

// PolicyParams profiles a parameterized policy instance end to end, and
// the default vector matches the plain policy bit-identically.
func TestProfileWithPolicyParams(t *testing.T) {
	w, err := WorkloadByNameSized("ycsb_b", 5, 150, 3000)
	if err != nil {
		t.Fatalf("WorkloadByNameSized: %v", err)
	}
	plain, err := Profile(w, Options{Policy: "knapsack", SLO: 0.10, Seed: 42})
	if err != nil {
		t.Fatalf("plain Profile: %v", err)
	}
	viaDefaults, err := Profile(w, Options{Policy: "knapsack", SLO: 0.10, Seed: 42,
		PolicyParams: map[string]float64{"rungs": 3, "anchor": 0}})
	if err != nil {
		t.Fatalf("Profile with default params: %v", err)
	}
	if viaDefaults.Advice.Point != plain.Advice.Point {
		t.Fatalf("default param vector changed the advice: %+v vs %+v",
			viaDefaults.Advice.Point, plain.Advice.Point)
	}
	anchored, err := Profile(w, Options{Policy: "knapsack", SLO: 0.10, Seed: 42,
		PolicyParams: map[string]float64{"anchor": 0.3}})
	if err != nil {
		t.Fatalf("anchored Profile: %v", err)
	}
	if got, want := anchored.Ordering.Name, "knapsack(anchor=0.3,rungs=3)"; got != want {
		t.Fatalf("anchored ordering named %q, want %q", got, want)
	}
}

// Policies exposes each policy's tunable parameter space.
func TestPoliciesExposeParams(t *testing.T) {
	var knapsack *PolicyInfo
	for _, p := range Policies() {
		if p.Name == "knapsack" {
			pi := p
			knapsack = &pi
		}
		switch p.Name {
		case "touch", "mnemot", "tahoe", "adaptive-mnemot":
			if len(p.Params) != 0 {
				t.Errorf("fixed policy %s reports params %+v", p.Name, p.Params)
			}
		case "freqdecay", "pagesample", "knapsack", "adaptive-freq":
			if len(p.Params) == 0 {
				t.Errorf("tunable policy %s reports no params", p.Name)
			}
		}
	}
	if knapsack == nil {
		t.Fatal("knapsack not listed")
	}
	anchor, ok := false, false
	for _, p := range knapsack.Params {
		if p.Name == "anchor" {
			anchor = true
			if p.Min != 0 || p.Max != 1 {
				t.Errorf("anchor bounds [%v,%v], want [0,1]", p.Min, p.Max)
			}
		}
		if p.Name == "rungs" {
			ok = p.Integer && p.Default == 3
		}
	}
	if !anchor || !ok {
		t.Fatalf("knapsack param space incomplete: %+v", knapsack.Params)
	}
}
