package mnemo

import (
	"context"
	"fmt"
	"io"

	"mnemo/internal/tune"
)

// TuneResult is a tuning run's outcome: the winning evaluation, each
// policy's default-parameter baseline, the cost/slowdown Pareto
// frontier, and the artifact-cache statistics showing how much
// measurement work memoization saved.
type TuneResult = tune.Result

// TuneEval is one evaluated candidate configuration.
type TuneEval = tune.Eval

// TuneCandidate is one point of the tuning search space: a policy name
// plus a (possibly partial) parameter vector.
type TuneCandidate = tune.Candidate

// TuneSpec is a reproducible tuned configuration, written by
// cmd/mnemo-tune and replayed bit-identically by `cmd/mnemo -config`.
type TuneSpec = tune.Spec

// TuneWorkloadRecipe names a built-in workload plus the generation
// seed and optional size overrides — the regeneration recipe a TuneSpec
// carries.
type TuneWorkloadRecipe = tune.WorkloadRecipe

// TuneOptions configures the search itself; the measurement each
// candidate is evaluated under comes from the accompanying Options.
type TuneOptions struct {
	// Budget caps the number of candidate evaluations (0 = 64).
	Budget int
	// SearchSeed drives the random exploration phase. A fixed seed makes
	// the whole search bit-deterministic, for any Workers value.
	SearchSeed int64
	// Workers bounds parallel candidate evaluations (0 = GOMAXPROCS).
	Workers int
	// Policies restricts the search (empty = every registered policy).
	Policies []string
}

// tuneConfig assembles the internal search config from the public
// option pair, rejecting option combinations tuning cannot honor.
func tuneConfig(opts Options, topts TuneOptions) (tune.Config, error) {
	if opts.SLO <= 0 {
		return tune.Config{}, fmt.Errorf("mnemo: Tune requires Options.SLO > 0 (the objective is the cheapest sizing within the SLO)")
	}
	if opts.Policy != "" || opts.UseMnemoT || len(opts.PolicyParams) > 0 {
		return tune.Config{}, fmt.Errorf("mnemo: Tune searches the policy space itself; leave Options.Policy/PolicyParams empty and restrict the search with TuneOptions.Policies")
	}
	if opts.EpochOps > 0 {
		return tune.Config{}, fmt.Errorf("mnemo: Tune measures candidates statically; EpochOps must be 0 (adaptive policies still compete via their static orderings)")
	}
	cfg, err := opts.coreConfig()
	if err != nil {
		return tune.Config{}, err
	}
	return tune.Config{
		Core:     cfg,
		SLO:      opts.SLO,
		Budget:   topts.Budget,
		Seed:     topts.SearchSeed,
		Workers:  topts.Workers,
		Policies: topts.Policies,
	}, nil
}

// Tune searches the registered policy/parameter space for the cheapest
// FastMem sizing that keeps the workload within Options.SLO. All
// candidate evaluations share one content-addressed baseline
// measurement (the memoization that makes wide searches affordable),
// and the search is bit-deterministic under TuneOptions.SearchSeed.
func Tune(ctx context.Context, w *Workload, opts Options, topts TuneOptions) (*TuneResult, error) {
	cfg, err := tuneConfig(opts, topts)
	if err != nil {
		return nil, err
	}
	return tune.New().Run(ctx, cfg, w)
}

// TuneWithSpec is Tune over a built-in workload recipe, additionally
// returning the reproducible tuned-config spec: the recipe, the
// workload content hash, the measurement config, the winning parameter
// vector and the expected outcome, which `cmd/mnemo -config` replays
// bit-identically.
func TuneWithSpec(ctx context.Context, recipe TuneWorkloadRecipe, opts Options, topts TuneOptions) (*TuneResult, *TuneSpec, error) {
	cfg, err := tuneConfig(opts, topts)
	if err != nil {
		return nil, nil, err
	}
	w, err := WorkloadByNameSized(recipe.Name, recipe.Seed, recipe.Keys, recipe.Requests)
	if err != nil {
		return nil, nil, err
	}
	tuner := tune.New()
	res, err := tuner.Run(ctx, cfg, w)
	if err != nil {
		return nil, nil, err
	}
	spec, err := tuner.NewSpec(res, cfg, w, recipe)
	if err != nil {
		return nil, nil, err
	}
	return res, spec, nil
}

// ReplayTuneSpec regenerates a spec's workload, re-evaluates the tuned
// configuration and verifies the advised outcome matches the spec's
// expected block bit-identically, returning the replayed evaluation.
func ReplayTuneSpec(ctx context.Context, spec *TuneSpec) (TuneEval, error) {
	return tune.New().Replay(ctx, spec)
}

// DecodeTuneSpec reads and validates a tuned-config spec (JSON, as
// written by cmd/mnemo-tune).
func DecodeTuneSpec(r io.Reader) (*TuneSpec, error) {
	return tune.DecodeSpec(r)
}
